"""Word-level selection logic: muxes, argmax / max trees, adder trees.

These are the CMP/MUX compositions DeepSecure uses for Max pooling and for
Softmax.  The paper implements Softmax as an argmax because Softmax is
monotonic, so the inference label is unchanged (Sec. 4.2); Table 3 prices
it at ``(n-1)`` comparator+mux stages.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ..errors import CircuitError
from .arith import less_than_signed, maximum, ripple_add, sign_extend
from .builder import Bus, CircuitBuilder

__all__ = [
    "max_tree",
    "argmax_tree",
    "argmax_linear",
    "mux_many",
    "adder_tree",
    "one_hot_from_index",
]


def max_tree(
    builder: CircuitBuilder, values: Sequence[Bus], signed: bool = True
) -> Bus:
    """Maximum of several equal-width words via a balanced CMP/MUX tree.

    Exactly ``len(values) - 1`` comparator+mux stages — the Table 3
    Softmax cost — and logarithmic non-XOR depth.
    """
    if not values:
        raise CircuitError("max_tree needs at least one value")
    level = [list(v) for v in values]
    while len(level) > 1:
        nxt: List[Bus] = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(maximum(builder, level[i], level[i + 1], signed=signed))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def argmax_tree(
    builder: CircuitBuilder, values: Sequence[Bus], signed: bool = True
) -> Tuple[Bus, Bus]:
    """Argmax over equal-width words.

    Returns ``(index_bus, max_value_bus)``; the index bus is
    ``ceil(log2(n))`` bits wide.  Compared to :func:`max_tree` each stage
    additionally muxes the index, which the paper's Softmax row does not
    price in (it returns the maximal label by value only); both variants
    are exposed so the synthesis report can show the difference.
    """
    if not values:
        raise CircuitError("argmax_tree needs at least one value")
    index_width = max(1, math.ceil(math.log2(max(len(values), 2))))
    level = [
        (builder.constant_bus(i, index_width), list(v))
        for i, v in enumerate(values)
    ]
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            (idx_a, val_a), (idx_b, val_b) = level[i], level[i + 1]
            a_lt_b = less_than_signed(builder, val_a, val_b) if signed else None
            if a_lt_b is None:
                from .arith import less_than

                a_lt_b = less_than(builder, val_a, val_b)
            value = builder.emit_mux_bus(a_lt_b, val_b, val_a)
            index = builder.emit_mux_bus(a_lt_b, idx_b, idx_a)
            nxt.append((index, value))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    index, value = level[0]
    return index, value


def argmax_linear(
    builder: CircuitBuilder, values: Sequence[Bus], signed: bool = True
) -> Tuple[Bus, Bus]:
    """Argmax with a linear scan (same gate count, linear depth).

    Matches the sequential-circuit realization where one comparator and
    one mux are folded and iterated ``n-1`` clock cycles (Sec. 3.5).
    """
    if not values:
        raise CircuitError("argmax_linear needs at least one value")
    index_width = max(1, math.ceil(math.log2(max(len(values), 2))))
    best_idx = builder.constant_bus(0, index_width)
    best_val = list(values[0])
    for i, candidate in enumerate(values[1:], start=1):
        if signed:
            better = less_than_signed(builder, best_val, candidate)
        else:
            from .arith import less_than

            better = less_than(builder, best_val, candidate)
        best_val = builder.emit_mux_bus(better, list(candidate), best_val)
        best_idx = builder.emit_mux_bus(
            better, builder.constant_bus(i, index_width), best_idx
        )
    return best_idx, best_val


def mux_many(
    builder: CircuitBuilder, select: Bus, options: Sequence[Bus]
) -> Bus:
    """N-to-1 word mux with an LSB-first select bus (recursive halving).

    Used by the LUT activation circuits: a ``2**k``-entry table is a
    ``k``-level mux tree over constant words.
    """
    if not options:
        raise CircuitError("mux_many needs at least one option")
    level = [list(o) for o in options]
    for bit in select:
        if len(level) == 1:
            break
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(builder.emit_mux_bus(bit, level[i + 1], level[i]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def adder_tree(
    builder: CircuitBuilder,
    terms: Sequence[Bus],
    grow: bool = True,
) -> Bus:
    """Sum of many signed words via a balanced tree of ripple adders.

    Args:
        builder: target builder.
        terms: equal-width signed addends.
        grow: widen by one bit per tree level to avoid overflow (the
            accumulator sizing DeepSecure uses for weighted sums).
    """
    if not terms:
        raise CircuitError("adder_tree needs at least one term")
    level = [list(t) for t in terms]
    while len(level) > 1:
        width = max(len(t) for t in level) + (1 if grow else 0)
        nxt = []
        for i in range(0, len(level) - 1, 2):
            a = sign_extend(builder, level[i], width)
            b = sign_extend(builder, level[i + 1], width)
            nxt.append(ripple_add(builder, a, b))
        if len(level) % 2:
            nxt.append(sign_extend(builder, level[-1], width))
        level = nxt
    return level[0]


def one_hot_from_index(
    builder: CircuitBuilder, index: Bus, count: int
) -> List[int]:
    """Decode an index bus into ``count`` one-hot wires (for label output)."""
    from .arith import equals

    outputs = []
    for value in range(count):
        const = builder.constant_bus(value, len(index))
        outputs.append(equals(builder, index, const))
    return outputs
