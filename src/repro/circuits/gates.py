"""Gate-level primitives for Boolean netlists.

DeepSecure represents every function evaluated under Yao's protocol as a
netlist of 2-input Boolean gates (paper Sec. 2.2.2).  Under the free-XOR
optimization (Kolesnikov-Schneider), XOR / XNOR / NOT gates cost nothing to
garble or transfer, while every other 2-input gate ("non-XOR" in the
paper's tables) costs one garbled table.  The :class:`GateType` enum
records, for each supported gate:

* its truth table (for plaintext simulation),
* whether it is free under free-XOR,
* its reduction to an AND gate with input/output inversions, which is what
  the half-gates garbler consumes (any non-degenerate, non-XOR 2-input
  gate is expressible as ``io ^ ((a ^ ia) & (b ^ ib))``).
"""

from __future__ import annotations

import enum
from typing import NamedTuple, Optional, Tuple

__all__ = ["GateType", "Gate", "INV", "FREE_GATES", "NONFREE_GATES"]


class GateType(enum.Enum):
    """Supported gate operations.

    ``BUF`` and ``NOT`` are 1-input; everything else is 2-input.
    """

    BUF = "buf"
    NOT = "not"
    XOR = "xor"
    XNOR = "xnor"
    AND = "and"
    NAND = "nand"
    OR = "or"
    NOR = "nor"
    ANDN = "andn"  # a AND (NOT b)
    ORN = "orn"  # a OR (NOT b)

    @property
    def arity(self) -> int:
        """Number of input wires the gate consumes."""
        return 1 if self in (GateType.BUF, GateType.NOT) else 2

    @property
    def is_free(self) -> bool:
        """True when the gate is free under the free-XOR optimization."""
        return self in _FREE

    def eval(self, a: int, b: int = 0) -> int:
        """Evaluate the gate on bit operands (``b`` ignored for 1-input)."""
        return _EVAL[self](a, b)


_FREE = frozenset({GateType.BUF, GateType.NOT, GateType.XOR, GateType.XNOR})

FREE_GATES: frozenset = _FREE
NONFREE_GATES: frozenset = frozenset(
    {
        GateType.AND,
        GateType.NAND,
        GateType.OR,
        GateType.NOR,
        GateType.ANDN,
        GateType.ORN,
    }
)

_EVAL = {
    GateType.BUF: lambda a, b: a & 1,
    GateType.NOT: lambda a, b: (a ^ 1) & 1,
    GateType.XOR: lambda a, b: (a ^ b) & 1,
    GateType.XNOR: lambda a, b: (a ^ b ^ 1) & 1,
    GateType.AND: lambda a, b: a & b & 1,
    GateType.NAND: lambda a, b: (a & b) ^ 1,
    GateType.OR: lambda a, b: (a | b) & 1,
    GateType.NOR: lambda a, b: (a | b) ^ 1,
    GateType.ANDN: lambda a, b: a & (b ^ 1),
    GateType.ORN: lambda a, b: (a | (b ^ 1)) & 1,
}


class INV(NamedTuple):
    """AND-reduction of a non-free gate.

    ``gate(a, b) == out ^ ((a ^ ia) & (b ^ ib))`` where ``ia, ib, out`` are
    the inversion bits below.  The half-gates garbler applies the input
    inversions by offsetting zero-labels with the global delta, which is
    free, so every non-free gate costs exactly two ciphertexts.
    """

    ia: int
    ib: int
    out: int


#: AND-with-inversions decomposition for each non-free gate type.
AND_REDUCTION = {
    GateType.AND: INV(0, 0, 0),
    GateType.NAND: INV(0, 0, 1),
    GateType.OR: INV(1, 1, 1),
    GateType.NOR: INV(1, 1, 0),
    GateType.ANDN: INV(0, 1, 0),
    GateType.ORN: INV(1, 0, 1),
}


class Gate(NamedTuple):
    """A single gate instance inside a netlist.

    Attributes:
        op: the gate operation.
        a: first input wire id.
        b: second input wire id (``None`` for 1-input gates).
        out: output wire id.
    """

    op: GateType
    a: int
    b: Optional[int]
    out: int

    def inputs(self) -> Tuple[int, ...]:
        """Input wire ids as a tuple (length 1 or 2)."""
        if self.b is None:
            return (self.a,)
        return (self.a, self.b)

    def eval(self, a: int, b: int = 0) -> int:
        """Evaluate this gate's boolean function on bit operands."""
        return self.op.eval(a, b)


def _self_check() -> None:
    """Verify the AND-reduction table against the truth tables."""
    for op, inv in AND_REDUCTION.items():
        for a in (0, 1):
            for b in (0, 1):
                reduced = inv.out ^ ((a ^ inv.ia) & (b ^ inv.ib))
                if reduced != op.eval(a, b):
                    raise AssertionError(f"AND reduction broken for {op}")


_self_check()
