"""Bristol-Fashion netlist interchange.

"Bristol Fashion" is the de-facto standard exchange format for garbled-
circuit netlists (used by SCALE-MAMBA, emp-toolkit, MOTION, ...).
Exporting to it makes every netlist this package generates consumable by
other MPC frameworks, and importing lets their standard circuits (AES,
SHA, adders) run under this engine.

Format (new style)::

    <#gates> <#wires>
    <#inputs> <width_1> ... <width_n>
    <#outputs> <width_1> ... <width_m>
    <blank line>
    2 1 <a> <b> <out> AND
    2 1 <a> <b> <out> XOR
    1 1 <a> <out> INV
    1 1 <a> <out> EQW          (wire copy)
    1 1 <0|1> <out> EQ         (constant assignment)

Conventions: input wires come first (party 1 then party 2), output wires
are the *last* ``sum(output widths)`` wires.  Our circuits use dedicated
constant wires and arbitrary output positions, so the exporter lowers to
the {XOR, INV, AND} basis, materializes constants with ``EQ`` gates and
adds ``EQW`` copies to relocate outputs.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import CircuitError
from .gates import Gate, GateType
from .netlist import CONST_ONE, CONST_ZERO, Circuit

__all__ = ["export_bristol", "import_bristol", "dumps_bristol", "loads_bristol"]

_EXPORT_OPS = {
    GateType.XOR: "XOR",
    GateType.AND: "AND",
    GateType.NOT: "INV",
    GateType.BUF: "EQW",
}


def dumps_bristol(circuit: Circuit) -> str:
    """Serialize a circuit to Bristol-Fashion text.

    The circuit is lowered to the {XOR, INV, AND} basis first (cost-
    neutral under half-gates); state wires are not representable and are
    rejected.
    """
    from ..synthesis.optimize import lower_to_gc_basis

    if circuit.n_state:
        raise CircuitError("sequential cores cannot be exported to Bristol")
    lowered = lower_to_gc_basis(circuit)

    n_alice, n_bob = lowered.n_alice, lowered.n_bob
    n_out = len(lowered.outputs)
    # Bristol wire numbering: Alice inputs, Bob inputs, internals, outputs
    remap: Dict[int, int] = {}
    for i, wire in enumerate(lowered.alice_inputs):
        remap[wire] = i
    for i, wire in enumerate(lowered.bob_inputs):
        remap[wire] = n_alice + i
    next_wire = n_alice + n_bob

    lines: List[str] = []

    def fresh() -> int:
        nonlocal next_wire
        wire = next_wire
        next_wire += 1
        return wire

    # constants (only if actually referenced)
    used_wires = set()
    for gate in lowered.gates:
        used_wires.update(gate.inputs())
    used_wires.update(lowered.outputs)
    for const, value in ((CONST_ZERO, 0), (CONST_ONE, 1)):
        if const in used_wires:
            out = fresh()
            lines.append(f"1 1 {value} {out} EQ")
            remap[const] = out

    for gate in lowered.gates:
        op = _EXPORT_OPS.get(gate.op)
        if op is None:  # pragma: no cover - lowering guarantees the basis
            raise CircuitError(f"gate {gate.op} not exportable")
        out = fresh()
        remap[gate.out] = out
        if gate.b is None:
            lines.append(f"1 1 {remap[gate.a]} {out} {op}")
        else:
            lines.append(f"2 1 {remap[gate.a]} {remap[gate.b]} {out} {op}")

    # relocate outputs to the final wires with EQW copies
    output_lines = []
    for wire in lowered.outputs:
        out = fresh()
        output_lines.append(f"1 1 {remap[wire]} {out} EQW")
    lines.extend(output_lines)

    header = [
        f"{len(lines)} {next_wire}",
        f"2 {n_alice} {n_bob}",
        f"1 {n_out}",
        "",
    ]
    return "\n".join(header + lines) + "\n"


def export_bristol(circuit: Circuit, path: str) -> None:
    """Write :func:`dumps_bristol` output to a file."""
    with open(path, "w") as handle:
        handle.write(dumps_bristol(circuit))


_IMPORT_OPS = {
    "XOR": GateType.XOR,
    "AND": GateType.AND,
    "INV": GateType.NOT,
    "NOT": GateType.NOT,
    "EQW": GateType.BUF,
    "OR": GateType.OR,
    "NAND": GateType.NAND,
    "XNOR": GateType.XNOR,
}


def loads_bristol(text: str, name: str = "bristol") -> Circuit:
    """Parse Bristol-Fashion text into a :class:`Circuit`.

    Supports the gate set XOR/AND/INV/NOT/EQW/EQ plus the common
    extensions OR/NAND/XNOR.  Input group 1 maps to Alice, group 2 to
    Bob (a single group becomes all-Alice).
    """
    lines = [l.strip() for l in text.splitlines() if l.strip()]
    if len(lines) < 3:
        raise CircuitError("truncated Bristol file")
    n_gates, n_wires = (int(v) for v in lines[0].split())
    in_spec = [int(v) for v in lines[1].split()]
    out_spec = [int(v) for v in lines[2].split()]
    if in_spec[0] + 1 != len(in_spec):
        raise CircuitError("malformed input declaration")
    if out_spec[0] + 1 != len(out_spec):
        raise CircuitError("malformed output declaration")
    input_widths = in_spec[1:]
    n_alice = input_widths[0]
    n_bob = sum(input_widths[1:])
    n_outputs = sum(out_spec[1:])
    gate_lines = lines[3:]
    if len(gate_lines) != n_gates:
        raise CircuitError(
            f"header promises {n_gates} gates, file has {len(gate_lines)}"
        )

    # our numbering: 0/1 constants, then inputs, then the rest
    offset = 2
    remap: Dict[int, int] = {
        i: offset + i for i in range(n_alice + n_bob)
    }
    next_wire = offset + n_alice + n_bob
    gates: List[Gate] = []

    def map_out(bristol_wire: int) -> int:
        nonlocal next_wire
        ours = next_wire
        next_wire += 1
        remap[bristol_wire] = ours
        return ours

    for line in gate_lines:
        parts = line.split()
        op_name = parts[-1]
        if op_name == "EQ":
            value = int(parts[2])
            source = CONST_ONE if value else CONST_ZERO
            out = map_out(int(parts[3]))
            gates.append(Gate(GateType.BUF, source, None, out))
            continue
        op = _IMPORT_OPS.get(op_name)
        if op is None:
            raise CircuitError(f"unsupported Bristol gate {op_name!r}")
        n_in = int(parts[0])
        if n_in == 1:
            a = remap[int(parts[2])]
            out = map_out(int(parts[3]))
            gates.append(Gate(op, a, None, out))
        elif n_in == 2:
            a = remap[int(parts[2])]
            b = remap[int(parts[3])]
            out = map_out(int(parts[4]))
            gates.append(Gate(op, a, b, out))
        else:
            raise CircuitError(f"unsupported fan-in {n_in}")

    outputs = [
        remap[w] for w in range(n_wires - n_outputs, n_wires)
    ]
    circuit = Circuit(
        n_alice=n_alice,
        n_bob=n_bob,
        gates=gates,
        outputs=outputs,
        n_wires=next_wire,
        name=name,
    )
    circuit.validate()
    return circuit


def import_bristol(path: str) -> Circuit:
    """Read a Bristol-Fashion file from disk."""
    with open(path) as handle:
        return loads_bristol(handle.read(), name=path)
