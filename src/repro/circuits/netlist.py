"""Netlist container: wires, gates, inputs and outputs.

A :class:`Circuit` is the unit everything else in this package consumes:
the plaintext simulator, the synthesis passes, the gate-count reports and
the garbling engine all walk the same structure.  Gates are stored in
topological order by construction (the builder only references wires that
already exist), mirroring the paper's requirement that "all gates in the
circuit have to be topologically sorted which creates a list of gates
called netlist" (Sec. 2.2.2).

Wire numbering convention::

    0                      constant-zero wire (always present)
    1                      constant-one wire (always present)
    2 .. 2+n_alice-1       Alice's (garbler / client) input wires
    ..  + n_bob            Bob's (evaluator / server) input wires
    ..  + n_state          register state wires (sequential circuits)
    remaining              internal gate outputs

Outputs are an ordered list of wire ids (duplicates allowed).  State
wires belong to neither party: in sequential garbling their labels are
carried over from the previous clock cycle (TinyGarble-style).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import CircuitError
from .gates import Gate, GateType

__all__ = ["Circuit", "GateCounts", "CONST_ZERO", "CONST_ONE"]

CONST_ZERO = 0
CONST_ONE = 1


@dataclasses.dataclass(frozen=True)
class GateCounts:
    """Inventory of a netlist in the paper's accounting units.

    ``xor`` counts free gates (XOR/XNOR/NOT/BUF), ``non_xor`` counts gates
    that need a garbled table.  These are the quantities reported in the
    paper's Tables 3-5.
    """

    xor: int
    non_xor: int

    @property
    def total(self) -> int:
        """Total number of gates."""
        return self.xor + self.non_xor

    def __add__(self, other: "GateCounts") -> "GateCounts":
        return GateCounts(self.xor + other.xor, self.non_xor + other.non_xor)

    def scaled(self, k: int) -> "GateCounts":
        """Counts for ``k`` replicas of this circuit."""
        return GateCounts(self.xor * k, self.non_xor * k)


class Circuit:
    """An immutable-by-convention Boolean netlist.

    Use :class:`repro.circuits.builder.CircuitBuilder` to construct one;
    direct mutation after :meth:`validate` is discouraged.
    """

    def __init__(
        self,
        n_alice: int,
        n_bob: int,
        gates: List[Gate],
        outputs: List[int],
        n_wires: int,
        name: str = "circuit",
        input_names: Optional[Dict[str, List[int]]] = None,
        output_names: Optional[Dict[str, List[int]]] = None,
        n_state: int = 0,
    ) -> None:
        self.n_alice = n_alice
        self.n_bob = n_bob
        self.n_state = n_state
        self.gates = gates
        self.outputs = outputs
        self.n_wires = n_wires
        self.name = name
        #: named groups of input wires (e.g. {"x": [...], "w": [...]})
        self.input_names: Dict[str, List[int]] = input_names or {}
        #: named groups of output wires
        self.output_names: Dict[str, List[int]] = output_names or {}

    # -- wire ranges -----------------------------------------------------

    @property
    def alice_inputs(self) -> range:
        """Wire ids carrying the garbler's (client's) input bits."""
        return range(2, 2 + self.n_alice)

    @property
    def bob_inputs(self) -> range:
        """Wire ids carrying the evaluator's (server's) input bits."""
        return range(2 + self.n_alice, 2 + self.n_alice + self.n_bob)

    @property
    def state_inputs(self) -> range:
        """Wire ids carrying register state (sequential circuits only)."""
        base = 2 + self.n_alice + self.n_bob
        return range(base, base + self.n_state)

    @property
    def n_inputs(self) -> int:
        """Total driven-from-outside bits: both parties plus state."""
        return self.n_alice + self.n_bob + self.n_state

    @property
    def n_outputs(self) -> int:
        """Number of output bits."""
        return len(self.outputs)

    # -- accounting ------------------------------------------------------

    def counts(self) -> GateCounts:
        """Count free vs non-free gates (the paper's XOR / non-XOR)."""
        non_xor = sum(1 for g in self.gates if not g.op.is_free)
        return GateCounts(xor=len(self.gates) - non_xor, non_xor=non_xor)

    def histogram(self) -> Dict[GateType, int]:
        """Per-gate-type histogram, for synthesis reports."""
        hist: Dict[GateType, int] = {}
        for gate in self.gates:
            hist[gate.op] = hist.get(gate.op, 0) + 1
        return hist

    # -- structural checks -----------------------------------------------

    def validate(self) -> None:
        """Check structural well-formedness.

        Raises:
            CircuitError: on dangling wires, out-of-order definitions,
                multiply-driven wires or out-of-range outputs.
        """
        defined = bytearray(self.n_wires)
        for wire in range(2 + self.n_inputs):
            defined[wire] = 1
        for idx, gate in enumerate(self.gates):
            for src in gate.inputs():
                if src < 0 or src >= self.n_wires:
                    raise CircuitError(
                        f"gate {idx} reads out-of-range wire {src}"
                    )
                if not defined[src]:
                    raise CircuitError(
                        f"gate {idx} reads wire {src} before it is driven; "
                        "netlist is not topologically ordered"
                    )
            if gate.out < 0 or gate.out >= self.n_wires:
                raise CircuitError(f"gate {idx} drives out-of-range wire")
            if defined[gate.out]:
                raise CircuitError(f"wire {gate.out} is multiply driven")
            if gate.op.arity == 2 and gate.b is None:
                raise CircuitError(f"gate {idx} ({gate.op}) is missing input b")
            defined[gate.out] = 1
        for out in self.outputs:
            if out < 0 or out >= self.n_wires or not defined[out]:
                raise CircuitError(f"output wire {out} is never driven")

    def fanout(self) -> Dict[int, int]:
        """Number of gate inputs (plus outputs) fed by each wire."""
        counts: Dict[int, int] = {}
        for gate in self.gates:
            for src in gate.inputs():
                counts[src] = counts.get(src, 0) + 1
        for out in self.outputs:
            counts[out] = counts.get(out, 0) + 1
        return counts

    def depth(self) -> int:
        """Longest input-to-output path counted in non-free gates.

        Garbling cost is dominated by non-free gates; this metric is the
        AND-depth commonly used to characterize GC netlists.
        """
        level = [0] * self.n_wires
        for gate in self.gates:
            src_level = max(level[w] for w in gate.inputs())
            level[gate.out] = src_level + (0 if gate.op.is_free else 1)
        if not self.outputs:
            return 0
        return max(level[w] for w in self.outputs)

    # -- conveniences ----------------------------------------------------

    def input_assignment(
        self,
        alice_bits: Sequence[int],
        bob_bits: Sequence[int],
        state_bits: Optional[Sequence[int]] = None,
    ) -> Dict[int, int]:
        """Map every input wire (including constants) to a bit value."""
        if len(alice_bits) != self.n_alice:
            raise CircuitError(
                f"expected {self.n_alice} Alice bits, got {len(alice_bits)}"
            )
        if len(bob_bits) != self.n_bob:
            raise CircuitError(
                f"expected {self.n_bob} Bob bits, got {len(bob_bits)}"
            )
        state_bits = list(state_bits or [])
        if len(state_bits) != self.n_state:
            raise CircuitError(
                f"expected {self.n_state} state bits, got {len(state_bits)}"
            )
        assignment = {CONST_ZERO: 0, CONST_ONE: 1}
        for wire, bit in zip(self.alice_inputs, alice_bits):
            assignment[wire] = bit & 1
        for wire, bit in zip(self.bob_inputs, bob_bits):
            assignment[wire] = bit & 1
        for wire, bit in zip(self.state_inputs, state_bits):
            assignment[wire] = bit & 1
        return assignment

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = self.counts()
        return (
            f"Circuit({self.name!r}, alice={self.n_alice}, bob={self.n_bob}, "
            f"outputs={len(self.outputs)}, xor={counts.xor}, "
            f"non_xor={counts.non_xor})"
        )


def concatenate(name: str, circuits: Iterable[Circuit]) -> Tuple[int, int]:
    """Sum gate counts over several circuits (bookkeeping helper)."""
    xor = 0
    non_xor = 0
    for circuit in circuits:
        counts = circuit.counts()
        xor += counts.xor
        non_xor += counts.non_xor
    return xor, non_xor
