"""Netlist container: wires, gates, inputs and outputs.

A :class:`Circuit` is the unit everything else in this package consumes:
the plaintext simulator, the synthesis passes, the gate-count reports and
the garbling engine all walk the same structure.  Gates are stored in
topological order by construction (the builder only references wires that
already exist), mirroring the paper's requirement that "all gates in the
circuit have to be topologically sorted which creates a list of gates
called netlist" (Sec. 2.2.2).

Wire numbering convention::

    0                      constant-zero wire (always present)
    1                      constant-one wire (always present)
    2 .. 2+n_alice-1       Alice's (garbler / client) input wires
    ..  + n_bob            Bob's (evaluator / server) input wires
    ..  + n_state          register state wires (sequential circuits)
    remaining              internal gate outputs

Outputs are an ordered list of wire ids (duplicates allowed).  State
wires belong to neither party: in sequential garbling their labels are
carried over from the previous clock cycle (TinyGarble-style).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import CircuitError
from .gates import AND_REDUCTION, Gate, GateType

__all__ = [
    "Circuit",
    "GateCounts",
    "LevelSchedule",
    "ScheduleLevel",
    "CONST_ZERO",
    "CONST_ONE",
]

CONST_ZERO = 0
CONST_ONE = 1


@dataclasses.dataclass(frozen=True)
class GateCounts:
    """Inventory of a netlist in the paper's accounting units.

    ``xor`` counts free gates (XOR/XNOR/NOT/BUF), ``non_xor`` counts gates
    that need a garbled table.  These are the quantities reported in the
    paper's Tables 3-5.
    """

    xor: int
    non_xor: int

    @property
    def total(self) -> int:
        """Total number of gates."""
        return self.xor + self.non_xor

    def __add__(self, other: "GateCounts") -> "GateCounts":
        return GateCounts(self.xor + other.xor, self.non_xor + other.non_xor)

    def scaled(self, k: int) -> "GateCounts":
        """Counts for ``k`` replicas of this circuit."""
        return GateCounts(self.xor * k, self.non_xor * k)


class Circuit:
    """An immutable-by-convention Boolean netlist.

    Use :class:`repro.circuits.builder.CircuitBuilder` to construct one;
    direct mutation after :meth:`validate` is discouraged.
    """

    def __init__(
        self,
        n_alice: int,
        n_bob: int,
        gates: List[Gate],
        outputs: List[int],
        n_wires: int,
        name: str = "circuit",
        input_names: Optional[Dict[str, List[int]]] = None,
        output_names: Optional[Dict[str, List[int]]] = None,
        n_state: int = 0,
    ) -> None:
        self.n_alice = n_alice
        self.n_bob = n_bob
        self.n_state = n_state
        self.gates = gates
        self.outputs = outputs
        self.n_wires = n_wires
        self.name = name
        #: named groups of input wires (e.g. {"x": [...], "w": [...]})
        self.input_names: Dict[str, List[int]] = input_names or {}
        #: named groups of output wires
        self.output_names: Dict[str, List[int]] = output_names or {}
        # lazily built, cached level schedule (circuits are immutable by
        # convention once handed out, so one schedule serves every
        # garble/evaluate over this netlist)
        self._level_schedule: Optional["LevelSchedule"] = None

    # -- wire ranges -----------------------------------------------------

    @property
    def alice_inputs(self) -> range:
        """Wire ids carrying the garbler's (client's) input bits."""
        return range(2, 2 + self.n_alice)

    @property
    def bob_inputs(self) -> range:
        """Wire ids carrying the evaluator's (server's) input bits."""
        return range(2 + self.n_alice, 2 + self.n_alice + self.n_bob)

    @property
    def state_inputs(self) -> range:
        """Wire ids carrying register state (sequential circuits only)."""
        base = 2 + self.n_alice + self.n_bob
        return range(base, base + self.n_state)

    @property
    def n_inputs(self) -> int:
        """Total driven-from-outside bits: both parties plus state."""
        return self.n_alice + self.n_bob + self.n_state

    @property
    def n_outputs(self) -> int:
        """Number of output bits."""
        return len(self.outputs)

    # -- accounting ------------------------------------------------------

    def counts(self) -> GateCounts:
        """Count free vs non-free gates (the paper's XOR / non-XOR)."""
        non_xor = sum(1 for g in self.gates if not g.op.is_free)
        return GateCounts(xor=len(self.gates) - non_xor, non_xor=non_xor)

    def histogram(self) -> Dict[GateType, int]:
        """Per-gate-type histogram, for synthesis reports."""
        hist: Dict[GateType, int] = {}
        for gate in self.gates:
            hist[gate.op] = hist.get(gate.op, 0) + 1
        return hist

    # -- structural checks -----------------------------------------------

    def validate(self) -> None:
        """Check structural well-formedness.

        Raises:
            CircuitError: on dangling wires, out-of-order definitions,
                multiply-driven wires or out-of-range outputs.
        """
        defined = bytearray(self.n_wires)
        for wire in range(2 + self.n_inputs):
            defined[wire] = 1
        for idx, gate in enumerate(self.gates):
            for src in gate.inputs():
                if src < 0 or src >= self.n_wires:
                    raise CircuitError(
                        f"gate {idx} reads out-of-range wire {src}"
                    )
                if not defined[src]:
                    raise CircuitError(
                        f"gate {idx} reads wire {src} before it is driven; "
                        "netlist is not topologically ordered"
                    )
            if gate.out < 0 or gate.out >= self.n_wires:
                raise CircuitError(f"gate {idx} drives out-of-range wire")
            if defined[gate.out]:
                raise CircuitError(f"wire {gate.out} is multiply driven")
            if gate.op.arity == 2 and gate.b is None:
                raise CircuitError(f"gate {idx} ({gate.op}) is missing input b")
            defined[gate.out] = 1
        for out in self.outputs:
            if out < 0 or out >= self.n_wires or not defined[out]:
                raise CircuitError(f"output wire {out} is never driven")

    def fanout(self) -> Dict[int, int]:
        """Number of gate inputs (plus outputs) fed by each wire."""
        counts: Dict[int, int] = {}
        for gate in self.gates:
            for src in gate.inputs():
                counts[src] = counts.get(src, 0) + 1
        for out in self.outputs:
            counts[out] = counts.get(out, 0) + 1
        return counts

    def depth(self) -> int:
        """Longest input-to-output path counted in non-free gates.

        Garbling cost is dominated by non-free gates; this metric is the
        AND-depth commonly used to characterize GC netlists.
        """
        level = [0] * self.n_wires
        for gate in self.gates:
            src_level = max(level[w] for w in gate.inputs())
            level[gate.out] = src_level + (0 if gate.op.is_free else 1)
        if not self.outputs:
            return 0
        return max(level[w] for w in self.outputs)

    # -- level schedule --------------------------------------------------

    def level_schedule(self) -> "LevelSchedule":
        """Topological level schedule for vectorized garbling/evaluation.

        Gates are grouped into dependency levels: every gate at level
        ``L`` reads only wires driven at levels ``< L`` (inputs and
        constants sit at level 0), so all gates within one level are
        independent and can be processed as one batched array operation.
        Within each level the gates are split into free (XOR-class) and
        non-free (garbled-table) groups, which is exactly the partition
        the half-gates engine cares about.

        The schedule is built once and cached — callers garbling many
        copies of the same netlist (pre-garbled pools, cut-and-choose)
        amortize the setup across all of them.
        """
        if self._level_schedule is None:
            self._level_schedule = LevelSchedule.build(self)
        return self._level_schedule

    # -- conveniences ----------------------------------------------------

    def input_assignment(
        self,
        alice_bits: Sequence[int],
        bob_bits: Sequence[int],
        state_bits: Optional[Sequence[int]] = None,
    ) -> Dict[int, int]:
        """Map every input wire (including constants) to a bit value."""
        if len(alice_bits) != self.n_alice:
            raise CircuitError(
                f"expected {self.n_alice} Alice bits, got {len(alice_bits)}"
            )
        if len(bob_bits) != self.n_bob:
            raise CircuitError(
                f"expected {self.n_bob} Bob bits, got {len(bob_bits)}"
            )
        state_bits = list(state_bits or [])
        if len(state_bits) != self.n_state:
            raise CircuitError(
                f"expected {self.n_state} state bits, got {len(state_bits)}"
            )
        assignment = {CONST_ZERO: 0, CONST_ONE: 1}
        for wire, bit in zip(self.alice_inputs, alice_bits):
            assignment[wire] = bit & 1
        for wire, bit in zip(self.bob_inputs, bob_bits):
            assignment[wire] = bit & 1
        for wire, bit in zip(self.state_inputs, state_bits):
            assignment[wire] = bit & 1
        return assignment

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = self.counts()
        return (
            f"Circuit({self.name!r}, alice={self.n_alice}, bob={self.n_bob}, "
            f"outputs={len(self.outputs)}, xor={counts.xor}, "
            f"non_xor={counts.non_xor})"
        )


@dataclasses.dataclass(frozen=True)
class ScheduleLevel:
    """One dependency level of a :class:`LevelSchedule`.

    All arrays are NumPy index/flag vectors over the circuit's wires.
    Free gates are described by ``free_a ^ free_b`` plus an optional
    delta offset (``free_inv``: XNOR/NOT garble as an extra global-delta
    XOR; the evaluator ignores the flag).  Unary gates (NOT/BUF) point
    ``free_b`` at the schedule's scratch zero row so the whole free
    group is a single gather-XOR-scatter.

    Non-free gates carry their AND-reduction inversion flags
    (``nf_ia/nf_ib/nf_io``) and their netlist-order table index
    ``nf_tidx`` — the tweak of gate ``i`` is ``tweak_base + 2 * nf_tidx[i]``,
    matching the scalar garbler's counter exactly so the two paths stay
    bit-identical.

    ``free_gates`` / ``nf_gates`` repeat the same data as plain Python
    tuples: narrow levels (a handful of gates) are cheaper to process
    gate-at-a-time than through array dispatch, so the hybrid engine
    iterates these instead of paying NumPy overhead per tiny level.
    """

    free_a: Any
    free_b: Any
    free_out: Any
    free_inv: Any
    nf_a: Any
    nf_b: Any
    nf_out: Any
    nf_tidx: Any
    nf_ia: Any
    nf_ib: Any
    nf_io: Any
    #: ((a, b, out, inv), ...) — ``b`` is the scratch wire for unary gates
    free_gates: Tuple[Tuple[int, int, int, int], ...]
    #: ((a, b, out, tidx, ia, ib, io), ...)
    nf_gates: Tuple[Tuple[int, int, int, int, int, int, int], ...]
    #: pre-reduced flag summaries so hot loops skip ndarray.any() calls
    free_has_inv: bool
    nf_has_ia: bool
    nf_has_ib: bool
    nf_has_io: bool
    #: little-endian byte rows of the gates' a/b tweaks at tweak_base 0
    #: ((m, 8) uint8) — the common case, precomputed once per schedule
    tw0_a: Any
    tw0_b: Any

    @property
    def n_free(self) -> int:
        return int(self.free_out.size)

    @property
    def n_non_free(self) -> int:
        return int(self.nf_out.size)


@dataclasses.dataclass(eq=False)
class LevelSchedule:
    """Cached per-level gate arrays for the vectorized GC engine.

    Immutable by convention (one cached instance per circuit); the only
    mutable member is the fused-run cache behind
    :meth:`fused_narrow_runs`.

    Attributes:
        levels: dependency levels in execution order.
        n_non_free: total garbled-table count (netlist non-XOR count).
        scratch_wire: index of the extra all-zero label row the
            vectorized engine appends after the real wires (unary free
            gates read it as their second operand).
        gate_outs: every gate output wire, for bulk defined-flag updates.
    """

    levels: Tuple[ScheduleLevel, ...]
    n_non_free: int
    n_wires: int
    scratch_wire: int
    gate_outs: Any
    _fused_cache: Dict[Tuple[int, int], Dict[int, tuple]] = dataclasses.field(
        default_factory=dict, repr=False, compare=False
    )

    def fused_narrow_runs(
        self, batch: int, min_width: int
    ) -> Dict[int, Tuple[int, Tuple[Tuple[int, ...], ...]]]:
        """Pre-flattened gate runs over consecutive narrow levels.

        The hybrid engine processes a level gate-at-a-time when its
        effective width (``batch`` copies x gates) stays below
        ``min_width`` — the ripple-carry tails of adder trees produce
        long stretches of such levels, each paying per-level Python
        dispatch for one or two gates.  This returns, for every maximal
        run of >= 2 consecutive all-narrow levels, the run's gates
        flattened into one tuple so the engine executes the whole
        stretch in a single scalar loop.

        Returns:
            ``{start_level_index: (end_level_index, gate_records,
            out_wires, table_indices)}``.  Each record is
            ``(a, b, out, tidx, ia, ib, io)``; free gates carry
            ``tidx == -1`` with their inversion flag in ``ia`` (``b``
            already points at the scratch zero row for unary gates).
            ``out_wires`` is the runs' output wires and
            ``table_indices`` its garbled-table slots, both as index
            arrays in record order — the engine computes the whole run
            on cached Python ints and scatters results back to the label
            plane in one assignment each.  Gate order preserves level
            order, so dependencies hold; within a level all gates are
            independent.  Cached per ``(batch, min_width)``.
        """
        import numpy as np

        key = (batch, min_width)
        cached = self._fused_cache.get(key)
        if cached is not None:
            return cached

        def narrow(level: ScheduleLevel) -> bool:
            return (
                batch * level.n_free < min_width
                and batch * level.n_non_free < min_width
            )

        runs: Dict[int, tuple] = {}
        levels = self.levels
        i = 0
        while i < len(levels):
            if not narrow(levels[i]):
                i += 1
                continue
            j = i
            while j < len(levels) and narrow(levels[j]):
                j += 1
            if j - i >= 2:
                records = []
                for level in levels[i:j]:
                    for a, b, out, inv in level.free_gates:
                        records.append((a, b, out, -1, inv, 0, 0))
                    records.extend(level.nf_gates)
                out_wires = np.asarray(
                    [r[2] for r in records], dtype=np.intp
                )
                table_indices = np.asarray(
                    [r[3] for r in records if r[3] >= 0], dtype=np.intp
                )
                runs[i] = (j, tuple(records), out_wires, table_indices)
            i = j
        self._fused_cache[key] = runs
        return runs

    @classmethod
    def build(cls, circuit: "Circuit") -> "LevelSchedule":
        """Levelize ``circuit`` (validates topological order as it goes)."""
        import numpy as np

        n_wires = circuit.n_wires
        scratch = n_wires
        wire_level = [0] * n_wires
        defined = bytearray(n_wires)
        for wire in range(min(2 + circuit.n_inputs, n_wires)):
            defined[wire] = 1
        per_level: Dict[int, List[Tuple[int, Gate, int]]] = {}
        table_index = 0
        for idx, gate in enumerate(circuit.gates):
            for src in gate.inputs():
                if not 0 <= src < n_wires or not defined[src]:
                    raise CircuitError(
                        f"gate {idx} reads wire {src} before it is driven; "
                        "netlist is not topologically ordered"
                    )
            if not 0 <= gate.out < n_wires:
                raise CircuitError(f"gate {idx} drives out-of-range wire")
            defined[gate.out] = 1
            level = 1 + max(wire_level[w] for w in gate.inputs())
            wire_level[gate.out] = level
            tidx = -1
            if not gate.op.is_free:
                if gate.op not in AND_REDUCTION:
                    raise CircuitError(
                        f"gate {idx} ({gate.op}) has no AND reduction; "
                        "cannot build a garbling schedule"
                    )
                tidx = table_index
                table_index += 1
            per_level.setdefault(level, []).append((idx, gate, tidx))

        levels: List[ScheduleLevel] = []
        for level in sorted(per_level):
            free_a: List[int] = []
            free_b: List[int] = []
            free_out: List[int] = []
            free_inv: List[int] = []
            nf_a: List[int] = []
            nf_b: List[int] = []
            nf_out: List[int] = []
            nf_tidx: List[int] = []
            nf_ia: List[int] = []
            nf_ib: List[int] = []
            nf_io: List[int] = []
            def _tw_rows(offset: int) -> Any:
                tweaks = 2 * np.asarray(nf_tidx, dtype=np.int64) + offset
                return tweaks.astype("<u8").view(np.uint8).reshape(-1, 8)

            for _, gate, tidx in per_level[level]:
                op = gate.op
                if op.is_free:
                    free_a.append(gate.a)
                    free_b.append(scratch if gate.b is None else gate.b)
                    free_out.append(gate.out)
                    free_inv.append(
                        1 if op in (GateType.XNOR, GateType.NOT) else 0
                    )
                else:
                    inv = AND_REDUCTION[op]
                    nf_a.append(gate.a)
                    nf_b.append(gate.b)
                    nf_out.append(gate.out)
                    nf_tidx.append(tidx)
                    nf_ia.append(inv.ia)
                    nf_ib.append(inv.ib)
                    nf_io.append(inv.out)
            levels.append(
                ScheduleLevel(
                    free_a=np.asarray(free_a, dtype=np.intp),
                    free_b=np.asarray(free_b, dtype=np.intp),
                    free_out=np.asarray(free_out, dtype=np.intp),
                    free_inv=np.asarray(free_inv, dtype=np.uint8),
                    nf_a=np.asarray(nf_a, dtype=np.intp),
                    nf_b=np.asarray(nf_b, dtype=np.intp),
                    nf_out=np.asarray(nf_out, dtype=np.intp),
                    nf_tidx=np.asarray(nf_tidx, dtype=np.int64),
                    nf_ia=np.asarray(nf_ia, dtype=np.uint8),
                    nf_ib=np.asarray(nf_ib, dtype=np.uint8),
                    nf_io=np.asarray(nf_io, dtype=np.uint8),
                    free_gates=tuple(
                        zip(free_a, free_b, free_out, free_inv)
                    ),
                    nf_gates=tuple(
                        zip(nf_a, nf_b, nf_out, nf_tidx, nf_ia, nf_ib, nf_io)
                    ),
                    free_has_inv=any(free_inv),
                    nf_has_ia=any(nf_ia),
                    nf_has_ib=any(nf_ib),
                    nf_has_io=any(nf_io),
                    tw0_a=_tw_rows(0),
                    tw0_b=_tw_rows(1),
                )
            )
        gate_outs = np.asarray(
            [gate.out for gate in circuit.gates], dtype=np.intp
        )
        return cls(
            levels=tuple(levels),
            n_non_free=table_index,
            n_wires=n_wires,
            scratch_wire=scratch,
            gate_outs=gate_outs,
        )


def concatenate(name: str, circuits: Iterable[Circuit]) -> Tuple[int, int]:
    """Sum gate counts over several circuits (bookkeeping helper)."""
    xor = 0
    non_xor = 0
    for circuit in circuits:
        counts = circuit.counts()
        xor += counts.xor
        non_xor += counts.non_xor
    return xor, non_xor
