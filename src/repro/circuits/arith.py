"""GC-optimized arithmetic blocks.

Every construction here minimizes the number of non-XOR gates, since under
free-XOR only those need garbled tables (paper Sec. 3.4).  Reference
costs for ``n``-bit operands (non-XOR gates, as produced by these
generators with structural hashing on):

====================  =======================  =========================
block                 non-XOR                  notes
====================  =======================  =========================
adder                 n (n-1 without cout)     1 AND per full-adder cell
subtractor            n                        adder with ~b, cin=1
comparator (LT)       n                        borrow chain only
equality              2n-1                     n XNOR free, n-1 AND tree
2:1 word mux          n                        1 AND per bit
conditional negate    n                        increment via AND chain
multiplier (signed)   ~2n^2                    Baugh-Wooley style array
divider (restoring)   ~2n^2                    n subtract/mux iterations
ReLU                  n-1                      sign-bit mux, MSB folded
====================  =======================  =========================

All buses are LSB-first lists of wire ids.  Signed values use two's
complement.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import CircuitError
from .builder import Bus, CircuitBuilder

__all__ = [
    "ripple_add",
    "ripple_sub",
    "negate",
    "increment",
    "less_than",
    "less_than_signed",
    "equals",
    "conditional_add_sub",
    "conditional_negate",
    "clamp_signed",
    "saturate_to_width",
    "multiply_accumulate",
    "absolute",
    "shift_left_const",
    "shift_right_arith_const",
    "shift_right_logic_const",
    "multiply_unsigned",
    "multiply_signed",
    "multiply_fixed",
    "multiply_fixed_full",
    "divide_unsigned",
    "divide_signed",
    "relu",
    "maximum",
    "minimum",
    "sign_extend",
    "truncate",
]


def _full_adder(
    builder: CircuitBuilder, a: int, b: int, cin: int
) -> Tuple[int, int]:
    """One GC-optimized full-adder cell: 1 AND, rest XOR.

    ``sum = a ^ b ^ cin``; ``cout = ((a ^ cin) & (b ^ cin)) ^ cin``.
    """
    axc = builder.emit_xor(a, cin)
    bxc = builder.emit_xor(b, cin)
    total = builder.emit_xor(axc, b)
    carry = builder.emit_xor(builder.emit_and(axc, bxc), cin)
    return total, carry


def ripple_add(
    builder: CircuitBuilder,
    a: Sequence[int],
    b: Sequence[int],
    cin: Optional[int] = None,
    with_cout: bool = False,
) -> Bus:
    """Ripple-carry addition of two equal-width buses.

    Args:
        builder: target builder.
        a: first addend, LSB first.
        b: second addend.
        cin: optional carry-in wire (defaults to constant 0).
        with_cout: append the carry-out as the final (extra) bit.

    Returns:
        Sum bus of width ``len(a)`` (+1 when ``with_cout``).
    """
    if len(a) != len(b):
        raise CircuitError("adder operands must have equal width")
    carry = cin if cin is not None else builder.zero
    out: Bus = []
    for bit_a, bit_b in zip(a, b):
        total, carry = _full_adder(builder, bit_a, bit_b, carry)
        out.append(total)
    if with_cout:
        out.append(carry)
    return out


def ripple_sub(
    builder: CircuitBuilder,
    a: Sequence[int],
    b: Sequence[int],
    with_borrow: bool = False,
) -> Bus:
    """Two's-complement subtraction ``a - b``.

    Implemented as ``a + ~b + 1``.  With ``with_borrow`` the final extra
    bit is the *borrow* (1 when ``a < b`` unsigned), i.e. the complement of
    the adder's carry-out.
    """
    not_b = builder.emit_not_bus(b)
    result = ripple_add(builder, a, not_b, cin=builder.one, with_cout=with_borrow)
    if with_borrow:
        result[-1] = builder.emit_not(result[-1])
    return result


def negate(builder: CircuitBuilder, a: Sequence[int]) -> Bus:
    """Two's-complement negation ``-a`` (same width, wraps on INT_MIN)."""
    return increment(builder, builder.emit_not_bus(a))


def increment(builder: CircuitBuilder, a: Sequence[int]) -> Bus:
    """``a + 1`` via a half-adder chain (n-1 AND gates)."""
    carry = builder.one
    out: Bus = []
    for i, bit in enumerate(a):
        out.append(builder.emit_xor(bit, carry))
        if i != len(a) - 1:
            carry = builder.emit_and(bit, carry)
    return out


def less_than(
    builder: CircuitBuilder, a: Sequence[int], b: Sequence[int]
) -> int:
    """Unsigned comparison ``a < b`` using only the borrow chain.

    Costs ``n`` AND gates and no sum bits, which is why the paper's
    Softmax/argmax stage is so cheap.
    """
    if len(a) != len(b):
        raise CircuitError("comparator operands must have equal width")
    carry = builder.one  # carry-in of a + ~b + 1
    for bit_a, bit_b in zip(a, b):
        not_b = builder.emit_not(bit_b)
        axc = builder.emit_xor(bit_a, carry)
        bxc = builder.emit_xor(not_b, carry)
        carry = builder.emit_xor(builder.emit_and(axc, bxc), carry)
    return builder.emit_not(carry)


def less_than_signed(
    builder: CircuitBuilder, a: Sequence[int], b: Sequence[int]
) -> int:
    """Signed (two's complement) comparison ``a < b``.

    Flips both sign bits and compares unsigned; the flips are free NOTs.
    """
    if not a:
        raise CircuitError("cannot compare empty buses")
    a_flip = list(a[:-1]) + [builder.emit_not(a[-1])]
    b_flip = list(b[:-1]) + [builder.emit_not(b[-1])]
    return less_than(builder, a_flip, b_flip)


def equals(builder: CircuitBuilder, a: Sequence[int], b: Sequence[int]) -> int:
    """Equality of two buses: free XNORs plus an AND tree."""
    if len(a) != len(b):
        raise CircuitError("equality operands must have equal width")
    bits = [builder.emit_xnor(x, y) for x, y in zip(a, b)]
    while len(bits) > 1:
        nxt = []
        for i in range(0, len(bits) - 1, 2):
            nxt.append(builder.emit_and(bits[i], bits[i + 1]))
        if len(bits) % 2:
            nxt.append(bits[-1])
        bits = nxt
    return bits[0] if bits else builder.one


def conditional_add_sub(
    builder: CircuitBuilder,
    a: Sequence[int],
    b: Sequence[int],
    sub: int,
) -> Bus:
    """Return ``a - b`` when ``sub`` is 1, else ``a + b`` (one adder).

    The subtraction flag conditionally complements ``b`` via free XORs and
    feeds the carry-in, so add-or-subtract costs the same ``n`` AND gates
    as a plain adder.  This is the workhorse of the CORDIC datapath, where
    the rotation direction is a secret sign bit.
    """
    flipped = [builder.emit_xor(bit, sub) for bit in b]
    return ripple_add(builder, list(a), flipped, cin=sub)


def conditional_negate(
    builder: CircuitBuilder, sel: int, a: Sequence[int]
) -> Bus:
    """Return ``sel ? -a : a`` using the XOR/increment trick.

    ``-a = ~a + 1``; conditionally complement with XOR against ``sel``
    (free) then add ``sel`` as carry-in (n-1 AND gates).
    """
    flipped = [builder.emit_xor(bit, sel) for bit in a]
    carry = sel
    out: Bus = []
    for i, bit in enumerate(flipped):
        out.append(builder.emit_xor(bit, carry))
        if i != len(flipped) - 1:
            carry = builder.emit_and(bit, carry)
    return out


def absolute(builder: CircuitBuilder, a: Sequence[int]) -> Bus:
    """Two's-complement absolute value (undefined only for INT_MIN)."""
    return conditional_negate(builder, a[-1], a)


def sign_extend(builder: CircuitBuilder, a: Sequence[int], width: int) -> Bus:
    """Extend a signed bus to ``width`` bits by repeating the sign wire."""
    if width < len(a):
        raise CircuitError("sign_extend target narrower than source")
    return list(a) + [a[-1]] * (width - len(a))


def truncate(a: Sequence[int], width: int) -> Bus:
    """Keep the low ``width`` bits of a bus (pure rewiring, zero gates)."""
    if width > len(a):
        raise CircuitError("truncate target wider than source")
    return list(a[:width])


def shift_left_const(
    builder: CircuitBuilder, a: Sequence[int], amount: int
) -> Bus:
    """Logical left shift by a public constant (pure rewiring)."""
    if amount < 0:
        raise CircuitError("shift amount must be non-negative")
    amount = min(amount, len(a))
    return [builder.zero] * amount + list(a[: len(a) - amount])


def shift_right_logic_const(
    builder: CircuitBuilder, a: Sequence[int], amount: int
) -> Bus:
    """Logical right shift by a public constant (pure rewiring)."""
    if amount < 0:
        raise CircuitError("shift amount must be non-negative")
    amount = min(amount, len(a))
    return list(a[amount:]) + [builder.zero] * amount


def shift_right_arith_const(
    builder: CircuitBuilder, a: Sequence[int], amount: int
) -> Bus:
    """Arithmetic right shift by a public constant (pure rewiring)."""
    if amount < 0:
        raise CircuitError("shift amount must be non-negative")
    if not a:
        return []
    amount = min(amount, len(a) - 1)
    return list(a[amount:]) + [a[-1]] * amount


def multiply_unsigned(
    builder: CircuitBuilder,
    a: Sequence[int],
    b: Sequence[int],
    max_width: Optional[int] = None,
) -> Bus:
    """Unsigned array multiplier; returns the full ``len(a)+len(b)`` bits.

    Shift-add rows of AND partial products accumulated with ripple adders.

    Args:
        builder: target builder.
        a: multiplicand (LSB first).
        b: multiplier.
        max_width: when set, product bits at positions >= max_width are
            not computed (exact modulo ``2**max_width``), trimming gates
            for fixed-point truncating multiplies.
    """
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        return []
    full = n + m
    limit = full if max_width is None else min(max_width, full)
    acc: Bus = [builder.emit_and(bit_a, b[0]) for bit_a in a]
    low_bits: Bus = [acc[0]]
    acc = acc[1:]
    for j in range(1, m):
        room = limit - j  # product bits still representable above position j
        row = [builder.emit_and(a[i], b[j]) for i in range(min(n, room))]
        width = min(max(len(acc), len(row)), room)
        lhs = (list(acc) + [builder.zero] * width)[:width]
        rhs = (list(row) + [builder.zero] * width)[:width]
        total = ripple_add(builder, lhs, rhs, with_cout=(width < room))
        if total:
            low_bits.append(total[0])
        acc = total[1:]
    product = (low_bits + acc)[:limit]
    return product + [builder.zero] * (full - len(product))


def multiply_signed(
    builder: CircuitBuilder, a: Sequence[int], b: Sequence[int]
) -> Bus:
    """Signed (two's complement) multiplier with full-width output.

    Uses the sign/magnitude decomposition: ``|a| * |b|`` through the
    unsigned array, then a conditional negate driven by the XOR of the
    sign bits.  This is the "enhanced ... signed input data" realization
    the paper contrasts with TinyGarble's unsigned matrix-vector product.
    """
    if not a or not b:
        return []
    sign = builder.emit_xor(a[-1], b[-1])
    mag = multiply_unsigned(builder, absolute(builder, a), absolute(builder, b))
    return conditional_negate(builder, sign, mag)


def multiply_accumulate(
    builder: CircuitBuilder,
    acc: Sequence[int],
    a: Sequence[int],
    b: Sequence[int],
    frac_bits: int,
) -> Bus:
    """One fixed-point MAC step: ``acc + (a * b >> frac_bits)``.

    This is the folded cell of the paper's sequential matrix-vector
    multiplier (Sec. 3.5): one MULT, one ADD and an accumulator register.
    The accumulator keeps its (wider) width to absorb sum growth.
    """
    product = multiply_fixed(builder, a, b, frac_bits)
    widened = sign_extend(builder, product, len(acc))
    return ripple_add(builder, list(acc), widened)


def multiply_fixed(
    builder: CircuitBuilder,
    a: Sequence[int],
    b: Sequence[int],
    frac_bits: int,
) -> Bus:
    """Fixed-point signed multiply returning ``len(a)`` bits.

    The product is shifted right by ``frac_bits`` (free rewiring) and
    truncated back to the operand width, matching the paper's 16-bit
    (1.3.12) number format.  Computed as ``|a|*|b|`` with the array
    trimmed to the bits that survive truncation, then a conditional
    negate on the narrow result (valid because two's-complement
    negation commutes with reduction mod ``2**width``).
    """
    if not a or not b:
        return []
    width = len(a)
    sign = builder.emit_xor(a[-1], b[-1])
    mag = multiply_unsigned(
        builder,
        absolute(builder, a),
        absolute(builder, b),
        max_width=frac_bits + width,
    )
    shifted = truncate(shift_right_logic_const(builder, mag, frac_bits), width)
    return conditional_negate(builder, sign, shifted)


def multiply_fixed_full(
    builder: CircuitBuilder,
    a: Sequence[int],
    b: Sequence[int],
    frac_bits: int,
) -> Bus:
    """Fixed-point signed multiply *without* output truncation.

    Returns ``len(a) + len(b) - frac_bits`` bits, enough to hold any
    product of the operands — what a wide MAC accumulator consumes
    before the final saturation (overflow-free, matching
    :func:`repro.nn.quantize.fixed_mul`).
    """
    if not a or not b:
        return []
    width = len(a) + len(b) - frac_bits
    sign = builder.emit_xor(a[-1], b[-1])
    mag = multiply_unsigned(builder, absolute(builder, a), absolute(builder, b))
    shifted = truncate(shift_right_logic_const(builder, mag, frac_bits), width)
    return conditional_negate(builder, sign, shifted)


def divide_unsigned(
    builder: CircuitBuilder,
    a: Sequence[int],
    b: Sequence[int],
    n_frac: int = 0,
) -> Bus:
    """Restoring division ``(a << n_frac) / b`` for unsigned buses.

    ``n_frac`` extra iterations produce fractional quotient bits, which is
    how the CORDIC Tanh obtains ``sinh/cosh`` in fixed point.  Division by
    zero yields the all-ones quotient (hardware convention).

    Returns:
        Quotient bus of width ``len(a) + n_frac``.
    """
    n = len(a)
    total_steps = n + n_frac
    width = n + 1  # remainder width: one guard bit
    remainder: Bus = [builder.zero] * width
    dividend = list(a)
    quotient: List[int] = []
    for step in range(total_steps):
        # shift remainder left by one, bring in next dividend bit (or 0)
        next_bit = dividend[n - 1 - step] if step < n else builder.zero
        remainder = [next_bit] + remainder[:-1]
        trial = ripple_sub(
            builder,
            remainder,
            list(b) + [builder.zero] * (width - len(b)),
            with_borrow=True,
        )
        borrow = trial[-1]
        keep = builder.emit_not(borrow)  # 1 when subtraction succeeded
        remainder = builder.emit_mux_bus(keep, trial[:-1], remainder)
        quotient.append(keep)
    quotient.reverse()
    return quotient


def divide_signed(
    builder: CircuitBuilder,
    a: Sequence[int],
    b: Sequence[int],
    n_frac: int = 0,
) -> Bus:
    """Signed division via magnitudes plus a conditional negate."""
    sign = builder.emit_xor(a[-1], b[-1])
    quotient = divide_unsigned(
        builder, absolute(builder, a), absolute(builder, b), n_frac=n_frac
    )
    return conditional_negate(builder, sign, quotient)


def clamp_signed(builder: CircuitBuilder, a: Sequence[int], limit: int) -> Bus:
    """Clamp a signed bus to ``[-limit, limit]`` (two CMP+MUX pairs).

    Used for saturating wide accumulators back to the I/O width and for
    clamping CORDIC angles into the convergence domain.
    """
    width = len(a)
    mask = (1 << width) - 1
    hi = builder.constant_bus(limit & mask, width)
    lo = builder.constant_bus((-limit) & mask, width)
    out = list(a)
    above = less_than_signed(builder, hi, out)
    out = builder.emit_mux_bus(above, hi, out)
    below = less_than_signed(builder, out, lo)
    return builder.emit_mux_bus(below, lo, out)


def saturate_to_width(
    builder: CircuitBuilder, a: Sequence[int], width: int
) -> Bus:
    """Symmetric saturation of a wide signed bus to ``width`` bits.

    Matches :func:`repro.nn.quantize.saturate`: values outside
    ``+-(2**(width-1) - 1)`` clamp to the bound.
    """
    if len(a) <= width:
        return sign_extend(builder, a, width)
    clamped = clamp_signed(builder, a, (1 << (width - 1)) - 1)
    return truncate(clamped, width)


def relu(builder: CircuitBuilder, a: Sequence[int]) -> Bus:
    """Rectified linear unit: ``max(0, a)`` for a signed bus.

    A single sign-bit-driven mux against zero; with constant folding this
    is ``n-1`` AND gates because the output MSB is always 0, matching the
    paper's 15 non-XOR for 16-bit ReLu.
    """
    if not a:
        return []
    keep = builder.emit_not(a[-1])  # 1 when a >= 0
    out = [builder.emit_and(bit, keep) for bit in a[:-1]]
    out.append(builder.zero)
    return out


def maximum(
    builder: CircuitBuilder,
    a: Sequence[int],
    b: Sequence[int],
    signed: bool = True,
) -> Bus:
    """Word-level max via one comparator and one mux (2n non-XOR)."""
    a_lt_b = (
        less_than_signed(builder, a, b) if signed else less_than(builder, a, b)
    )
    return builder.emit_mux_bus(a_lt_b, list(b), list(a))


def minimum(
    builder: CircuitBuilder,
    a: Sequence[int],
    b: Sequence[int],
    signed: bool = True,
) -> Bus:
    """Word-level min via one comparator and one mux."""
    a_lt_b = (
        less_than_signed(builder, a, b) if signed else less_than(builder, a, b)
    )
    return builder.emit_mux_bus(a_lt_b, list(a), list(b))
