"""Boolean-circuit substrate: netlists, builders, arithmetic, activations.

This subpackage is the foundation of the reproduction: every function that
DeepSecure evaluates under Yao's protocol is first expressed as a netlist
built here.
"""

from .bristol import dumps_bristol, export_bristol, import_bristol, loads_bristol
from .builder import Bus, CircuitBuilder
from .fixedpoint import DEFAULT_FORMAT, FixedPointFormat
from .gates import Gate, GateType
from .netlist import CONST_ONE, CONST_ZERO, Circuit, GateCounts
from .simulate import bits_from_int, int_from_bits, simulate, simulate_words

__all__ = [
    "Bus",
    "CircuitBuilder",
    "Circuit",
    "GateCounts",
    "Gate",
    "GateType",
    "FixedPointFormat",
    "DEFAULT_FORMAT",
    "CONST_ZERO",
    "CONST_ONE",
    "simulate",
    "simulate_words",
    "bits_from_int",
    "int_from_bits",
    "dumps_bristol",
    "loads_bristol",
    "export_bristol",
    "import_bristol",
]
