"""Sequential (folded) circuits: registers, cycles and unrolling.

DeepSecure follows TinyGarble in garbling *sequential* circuits: instead
of instantiating every MULT/ADD of a matrix multiplication, one folded
datapath plus registers is garbled and evaluated for multiple clock
cycles, keeping the netlist memory footprint constant (paper Sec. 3.5).

A :class:`SequentialCircuit` wraps a combinational core whose extra
"state" input wires are register outputs; each register binds one state
wire to the core wire whose value is latched at the end of every cycle.
The plaintext simulator and the sequential garbler both consume this
structure; :meth:`SequentialCircuit.unroll` produces the equivalent
combinational circuit for cross-checking.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from ..errors import CircuitError
from .builder import Bus, CircuitBuilder
from .gates import Gate
from .netlist import CONST_ONE, CONST_ZERO, Circuit

__all__ = ["Register", "SequentialCircuit", "SequentialBuilder"]


@dataclasses.dataclass(frozen=True)
class Register:
    """A one-bit register binding inside a sequential circuit.

    Attributes:
        q_wire: core wire carrying the register's current value (one of
            the core's state inputs).
        d_wire: core wire whose value is latched at the end of a cycle.
        init: power-on value (public, part of the netlist).
    """

    q_wire: int
    d_wire: int
    init: int = 0


class SequentialCircuit:
    """A combinational core plus register bindings.

    Attributes:
        core: the per-cycle netlist; its state inputs are register
            outputs, in the order of ``registers``.
        registers: bindings, one per state input wire of ``core``.
    """

    def __init__(self, core: Circuit, registers: Sequence[Register]) -> None:
        if len(registers) != core.n_state:
            raise CircuitError(
                f"core declares {core.n_state} state wires but "
                f"{len(registers)} registers are bound"
            )
        state_wires = list(core.state_inputs)
        for reg, expected in zip(registers, state_wires):
            if reg.q_wire != expected:
                raise CircuitError(
                    f"register q_wire {reg.q_wire} out of order "
                    f"(expected {expected})"
                )
            if reg.d_wire < 0 or reg.d_wire >= core.n_wires:
                raise CircuitError("register d_wire out of range")
        self.core = core
        self.registers = list(registers)

    @property
    def n_state(self) -> int:
        """Number of register bits."""
        return len(self.registers)

    def initial_state(self) -> List[int]:
        """Power-on register values."""
        return [reg.init & 1 for reg in self.registers]

    # -- simulation ---------------------------------------------------------

    def run(
        self,
        alice_cycles: Sequence[Sequence[int]],
        bob_cycles: Sequence[Sequence[int]],
        cycles: Optional[int] = None,
    ) -> List[List[int]]:
        """Simulate for several cycles; returns per-cycle output bits.

        Args:
            alice_cycles: per-cycle Alice input bits.  A single entry is
                reused for every cycle (constant input).
            bob_cycles: per-cycle Bob input bits, same convention.
            cycles: number of cycles (defaults to the longer input list).
        """
        n_cycles = cycles or max(len(alice_cycles), len(bob_cycles), 1)
        state = self.initial_state()
        outputs: List[List[int]] = []
        for cycle in range(n_cycles):
            alice = self._cycle_input(alice_cycles, cycle, self.core.n_alice)
            bob = self._cycle_input(bob_cycles, cycle, self.core.n_bob)
            values = self._evaluate_wires(alice, bob, state)
            outputs.append([values[w] for w in self.core.outputs])
            state = [values[reg.d_wire] for reg in self.registers]
        return outputs

    def final_state(
        self,
        alice_cycles: Sequence[Sequence[int]],
        bob_cycles: Sequence[Sequence[int]],
        cycles: int,
    ) -> List[int]:
        """Register contents after ``cycles`` cycles (for tests)."""
        state = self.initial_state()
        for cycle in range(cycles):
            alice = self._cycle_input(alice_cycles, cycle, self.core.n_alice)
            bob = self._cycle_input(bob_cycles, cycle, self.core.n_bob)
            values = self._evaluate_wires(alice, bob, state)
            state = [values[reg.d_wire] for reg in self.registers]
        return state

    @staticmethod
    def _cycle_input(
        per_cycle: Sequence[Sequence[int]], cycle: int, width: int
    ) -> List[int]:
        if not per_cycle:
            return [0] * width
        if len(per_cycle) == 1:
            return list(per_cycle[0])
        if cycle >= len(per_cycle):
            raise CircuitError(f"no input provided for cycle {cycle}")
        return list(per_cycle[cycle])

    def _evaluate_wires(
        self, alice: Sequence[int], bob: Sequence[int], state: Sequence[int]
    ) -> Dict[int, int]:
        values: Dict[int, int] = {CONST_ZERO: 0, CONST_ONE: 1}
        values.update(self.core.input_assignment(alice, bob, state))
        for gate in self.core.gates:
            if gate.b is None:
                values[gate.out] = gate.eval(values[gate.a])
            else:
                values[gate.out] = gate.eval(values[gate.a], values[gate.b])
        return values

    # -- unrolling ------------------------------------------------------------

    def unroll(self, cycles: int) -> Circuit:
        """Expand to an equivalent combinational circuit over ``cycles``.

        Per-cycle inputs of both parties are concatenated
        (cycle-major); outputs likewise.  Register wires are spliced:
        cycle ``i``'s d-wire value feeds cycle ``i+1``'s q-wire.
        """
        if cycles < 1:
            raise CircuitError("cycles must be >= 1")
        core = self.core
        builder_gates: List[Gate] = []
        n_alice = core.n_alice * cycles
        n_bob = core.n_bob * cycles
        next_wire = 2 + n_alice + n_bob
        outputs: List[int] = []
        # constant-init state for cycle 0
        state_map = {
            reg.q_wire: (CONST_ONE if reg.init else CONST_ZERO)
            for reg in self.registers
        }
        for cycle in range(cycles):
            remap: Dict[int, int] = {CONST_ZERO: CONST_ZERO, CONST_ONE: CONST_ONE}
            for i, wire in enumerate(core.alice_inputs):
                remap[wire] = 2 + cycle * core.n_alice + i
            for i, wire in enumerate(core.bob_inputs):
                remap[wire] = 2 + n_alice + cycle * core.n_bob + i
            remap.update(state_map)
            for gate in core.gates:
                out = next_wire
                next_wire += 1
                builder_gates.append(
                    Gate(
                        gate.op,
                        remap[gate.a],
                        None if gate.b is None else remap[gate.b],
                        out,
                    )
                )
                remap[gate.out] = out
            outputs.extend(remap[w] for w in core.outputs)
            state_map = {
                reg.q_wire: remap[reg.d_wire] for reg in self.registers
            }
        unrolled = Circuit(
            n_alice=n_alice,
            n_bob=n_bob,
            gates=builder_gates,
            outputs=outputs,
            n_wires=next_wire,
            name=f"{core.name}_x{cycles}",
        )
        unrolled.validate()
        return unrolled


class SequentialBuilder(CircuitBuilder):
    """Builder with register support.

    Usage::

        bld = SequentialBuilder("accumulator")
        x = bld.add_alice_inputs(16)
        acc = bld.add_registers(16)           # q wires
        total = ripple_add(bld, acc, x)
        bld.bind_registers(acc, total)        # latch d wires
        seq = bld.build_sequential()
    """

    def __init__(self, name: str = "sequential", **kwargs) -> None:
        super().__init__(name=name, **kwargs)
        self._register_inits: Dict[int, int] = {}
        self._register_binds: Dict[int, int] = {}

    def add_registers(self, count: int, init: int = 0) -> Bus:
        """Allocate ``count`` register-output (q) wires.

        Args:
            count: number of one-bit registers.
            init: initial value, encoded little-endian across the bus.
        """
        bus = self.add_state_inputs(count)
        for i, wire in enumerate(bus):
            self._register_inits[wire] = (init >> i) & 1
        return bus

    def bind_registers(self, q_bus: Sequence[int], d_bus: Sequence[int]) -> None:
        """Bind next-state (d) wires to previously allocated q wires."""
        if len(q_bus) != len(d_bus):
            raise CircuitError("q/d bus width mismatch")
        for q_wire, d_wire in zip(q_bus, d_bus):
            if q_wire not in self._register_inits:
                raise CircuitError(f"wire {q_wire} is not a register output")
            if q_wire in self._register_binds:
                raise CircuitError(f"register {q_wire} bound twice")
            self._register_binds[q_wire] = d_wire

    def build_sequential(self) -> SequentialCircuit:
        """Finalize the core and its register bindings."""
        core = self.build()
        registers = []
        for q_wire in core.state_inputs:
            if q_wire not in self._register_binds:
                raise CircuitError(f"register {q_wire} never bound")
            registers.append(
                Register(
                    q_wire=q_wire,
                    d_wire=self._register_binds[q_wire],
                    init=self._register_inits[q_wire],
                )
            )
        return SequentialCircuit(core, registers)
