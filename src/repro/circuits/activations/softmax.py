"""Softmax output layer as a secure argmax.

Softmax is monotonically increasing, so it never changes which output
unit is maximal; DeepSecure therefore replaces it with a CMP/MUX argmax
tree (paper Sec. 4.2, Table 3 row ``Softmax_n``: ``(n-1)`` stages).
Both the value-only variant (the one Table 3 prices) and the
index-returning variant (what an inference service actually reveals)
are provided.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..builder import Bus, CircuitBuilder
from ..logic import argmax_tree, max_tree, one_hot_from_index

__all__ = ["softmax_max_value", "softmax_argmax", "softmax_onehot"]


def softmax_max_value(
    builder: CircuitBuilder, logits: Sequence[Bus]
) -> Bus:
    """Maximum logit value ((n-1) CMP+MUX stages, Table 3's Softmax)."""
    return max_tree(builder, logits, signed=True)


def softmax_argmax(
    builder: CircuitBuilder, logits: Sequence[Bus]
) -> Tuple[Bus, Bus]:
    """Argmax index and value of the logits (inference label)."""
    return argmax_tree(builder, logits, signed=True)


def softmax_onehot(
    builder: CircuitBuilder, logits: Sequence[Bus]
) -> List[int]:
    """One-hot encoded inference label (n single-bit outputs)."""
    index, _ = argmax_tree(builder, logits, signed=True)
    return one_hot_from_index(builder, index, len(logits))
