"""CORDIC activation circuits (``TanhCORDIC`` / ``SigmoidCORDIC``).

The paper computes Tanh and Sigmoid with a COordinate Rotation DIgital
Computer operated in hyperbolic rotation mode: after the iterations the
state holds ``cosh(z)`` and ``sinh(z)``, from which
``tanh = sinh / cosh`` and ``sigmoid = 1 / (1 + cosh - sinh)`` follow
with one division (Sec. 4.2).  Each extra iteration adds one bit of
precision; iterations ``3i + 1`` (4, 13, 40, ...) must be repeated for
convergence, giving the paper's 14 iterations at 12 fractional bits.

Standard hyperbolic CORDIC only converges for ``|z| <= 1.1182``, which
does not cover the paper's +-4/+-8 activation inputs, so we add the
classic range expansion (Hu et al.): extra leading stages with
coefficients ``1 - 2**(k-2)`` for ``k = 0, -1, ...`` extend the domain to
~5.17 (three stages) or ~9.7 (five stages).  The expansion count and the
internal fixed-point width are sized automatically from a float
simulation of the exact datapath.

Two mirror implementations are provided and kept bit-exact to each other:

* :func:`rotate_reference` — integer software model (fast, testable);
* :func:`cordic_sinh_cosh` — the Boolean circuit.
"""

from __future__ import annotations

import dataclasses
import math
from functools import lru_cache
from typing import List, Sequence, Tuple

from ...errors import CircuitError
from ..arith import (
    clamp_signed,
    conditional_add_sub,
    conditional_negate,
    divide_unsigned,
    ripple_add,
    ripple_sub,
    shift_right_arith_const,
    sign_extend,
    truncate,
)
from ..builder import Bus, CircuitBuilder
from ..fixedpoint import FixedPointFormat
from .common import split_magnitude

__all__ = [
    "CordicPlan",
    "hyperbolic_plan",
    "rotate_reference",
    "cordic_sinh_cosh",
    "tanh_cordic",
    "sigmoid_cordic",
    "sigmoid_cordic_via_tanh",
    "tanh_reference",
    "sigmoid_reference",
    "sigmoid_via_tanh_reference",
]


@dataclasses.dataclass(frozen=True)
class CordicPlan:
    """A fully-resolved hyperbolic CORDIC schedule.

    Attributes:
        stages: ``k`` indices in execution order; ``k <= 0`` are range-
            expansion stages (coefficient ``1 - 2**(k-2)``), ``k >= 1``
            are standard stages (coefficient ``2**-k``), repeats included.
        internal: internal fixed-point format of the x/y/z datapath.
        gain: multiplicative gain ``G`` such that the final x equals
            ``G * x0 * cosh(z)``.
        z_max: convergence bound (sum of stage angles).
        x0: integer initializer ``round(scale / gain)``.
        angles: per-stage ``atanh`` constants in internal fixed point.
    """

    stages: Tuple[int, ...]
    internal: FixedPointFormat
    gain: float
    z_max: float
    x0: int
    angles: Tuple[int, ...]

    @property
    def iterations(self) -> int:
        """Number of iterations including repeats (paper: 14 at 12 bits)."""
        return len(self.stages)

    @property
    def z_limit(self) -> int:
        """Largest safe ``|z|`` in internal fixed point."""
        return int(self.z_max * self.internal.scale) - 1


def _stage_coefficient(k: int) -> float:
    return 1.0 - 2.0 ** (k - 2) if k <= 0 else 2.0 ** (-k)


def _float_rotate(z: float, stages: Sequence[int]) -> Tuple[float, float, float]:
    """Float CORDIC used only for sizing; returns (x, y, max_state)."""
    x, y = 1.0, 0.0
    peak = 1.0
    for k in stages:
        c = _stage_coefficient(k)
        angle = math.atanh(c)
        d = 1.0 if z >= 0 else -1.0
        x, y = x + d * c * y, y + d * c * x
        z -= d * angle
        peak = max(peak, abs(x), abs(y))
    return x, y, peak


@lru_cache(maxsize=None)
def hyperbolic_plan(
    frac_bits: int = 12,
    expansion: int = 2,
    guard_bits: int = 2,
) -> CordicPlan:
    """Build a CORDIC schedule for ``frac_bits`` of output precision.

    Args:
        frac_bits: output fractional bits (paper: 12).
        expansion: number of range-expansion stages (3 covers |z|<=5.17
            for Tanh; 5 covers |z|<=9.7 for Sigmoid).
        guard_bits: extra internal fractional bits against rounding drift.
    """
    stages: List[int] = list(range(1 - expansion, 1))  # most negative first
    last = frac_bits + 1
    for k in range(1, last + 1):
        stages.append(k)
        if k in (4, 13, 40) and k < last:
            # convergence repeats (3i+1 rule); repeating the final stage
            # adds nothing, so the 12-bit schedule is the paper's 14
            # iterations: k = 1..13 with stage 4 doubled
            stages.append(k)
    z_max = sum(math.atanh(_stage_coefficient(k)) for k in stages)
    gain, _, _ = _float_rotate(0.0, stages)
    # size the integer datapath from the float model across the domain
    peak = 0.0
    samples = 64
    for i in range(samples + 1):
        z = z_max * (i / samples)
        _, _, p = _float_rotate(z, stages)
        peak = max(peak, p / gain)
    peak *= 1.0  # states are scaled by x0 ~ 1/gain, so peak/gain bounds them
    int_bits = max(1, math.ceil(math.log2(peak * 1.05 + 1)))
    internal = FixedPointFormat(int_bits=int_bits, frac_bits=frac_bits + guard_bits)
    x0 = round(internal.scale / gain)
    angles = tuple(
        round(math.atanh(_stage_coefficient(k)) * internal.scale)
        for k in stages
    )
    return CordicPlan(
        stages=tuple(stages),
        internal=internal,
        gain=gain,
        z_max=z_max,
        x0=x0,
        angles=angles,
    )


# ---------------------------------------------------------------------------
# integer software model (bit-exact mirror of the circuit)
# ---------------------------------------------------------------------------


def rotate_reference(z_int: int, plan: CordicPlan) -> Tuple[int, int]:
    """Integer CORDIC rotation; returns ``(cosh, sinh)`` in internal scale.

    ``z_int`` is the angle in the *internal* fixed-point scale and is
    clamped to the convergence domain exactly as the circuit clamps it.
    """
    limit = plan.z_limit
    z = max(-limit, min(limit, z_int))
    x, y = plan.x0, 0
    for k, angle in zip(plan.stages, plan.angles):
        if k <= 0:
            shift = 2 - k
            tx = y - (y >> shift)
            ty = x - (x >> shift)
        else:
            tx = y >> k
            ty = x >> k
        if z >= 0:
            x, y, z = x + tx, y + ty, z - angle
        else:
            x, y, z = x - tx, y - ty, z + angle
    return x, y


def tanh_reference(value: float, io_fmt: FixedPointFormat, plan: CordicPlan) -> float:
    """Bit-exact software model of :func:`tanh_cordic` (for tests)."""
    z_io = io_fmt.encode(value)
    shift = plan.internal.frac_bits - io_fmt.frac_bits
    z_int = z_io << shift if shift >= 0 else z_io >> -shift
    cosh, sinh = rotate_reference(z_int, plan)
    quotient = (abs(sinh) << io_fmt.frac_bits) // cosh
    signed = -quotient if sinh < 0 else quotient
    return io_fmt.decode(io_fmt.from_unsigned(signed & ((1 << io_fmt.width) - 1)))


def sigmoid_reference(
    value: float, io_fmt: FixedPointFormat, plan: CordicPlan
) -> float:
    """Bit-exact software model of :func:`sigmoid_cordic` (for tests)."""
    z_io = io_fmt.encode(value)
    shift = plan.internal.frac_bits - io_fmt.frac_bits
    z_int = z_io << shift if shift >= 0 else z_io >> -shift
    cosh, sinh = rotate_reference(z_int, plan)
    denom = plan.internal.scale + cosh - sinh  # 1 + e^-x, internal scale
    quotient = (plan.internal.scale << io_fmt.frac_bits) // denom
    quotient = min(quotient, (1 << (io_fmt.width - 1)) - 1)
    return io_fmt.decode(quotient)


# ---------------------------------------------------------------------------
# circuits
# ---------------------------------------------------------------------------


def _to_internal(
    builder: CircuitBuilder,
    x: Sequence[int],
    io_fmt: FixedPointFormat,
    plan: CordicPlan,
) -> Bus:
    """Convert an io-format bus to the internal format and clamp it."""
    shift = plan.internal.frac_bits - io_fmt.frac_bits
    widened = sign_extend(builder, list(x), io_fmt.width + max(shift, 0))
    if shift >= 0:
        scaled = [builder.zero] * shift + widened[: len(widened) - shift]
    else:
        scaled = shift_right_arith_const(builder, widened, -shift)
    target = plan.internal.width
    if len(scaled) < target:
        scaled = sign_extend(builder, scaled, target)
    else:
        scaled = truncate(scaled, target)
    return clamp_signed(builder, scaled, plan.z_limit)


def cordic_sinh_cosh(
    builder: CircuitBuilder,
    z: Sequence[int],
    plan: CordicPlan,
) -> Tuple[Bus, Bus]:
    """Unrolled hyperbolic CORDIC; ``z`` is in the *internal* format.

    Returns ``(cosh_bus, sinh_bus)`` in the internal format.  Shift
    amounts and angle constants are folded per iteration, so each stage
    costs three conditional add/subs (plus two subtractions for the
    range-expansion stages).
    """
    width = plan.internal.width
    if len(z) != width:
        raise CircuitError(f"z must be {width} bits, got {len(z)}")
    x = builder.constant_bus(plan.x0, width)
    y = builder.constant_bus(0, width)
    z = list(z)
    for k, angle in zip(plan.stages, plan.angles):
        if k <= 0:
            shift = 2 - k
            tx = ripple_sub(builder, y, shift_right_arith_const(builder, y, shift))
            ty = ripple_sub(builder, x, shift_right_arith_const(builder, x, shift))
        else:
            tx = shift_right_arith_const(builder, y, k)
            ty = shift_right_arith_const(builder, x, k)
        negative = z[-1]  # 1 when z < 0 -> subtract
        x = conditional_add_sub(builder, x, tx, negative)
        y = conditional_add_sub(builder, y, ty, negative)
        angle_bus = builder.constant_bus(angle, width)
        positive = builder.emit_not(negative)
        z = conditional_add_sub(builder, z, angle_bus, positive)
    return x, y


def tanh_cordic(
    builder: CircuitBuilder,
    x: Sequence[int],
    fmt: FixedPointFormat,
    plan: CordicPlan = None,
) -> Bus:
    """``TanhCORDIC``: rotation, then one division ``sinh / cosh``.

    Three expansion stages give ``z_max ~= 5.17``; beyond the clamp,
    ``1 - tanh`` is below one output ulp, so clamping costs no accuracy.
    """
    plan = plan or hyperbolic_plan(frac_bits=fmt.frac_bits, expansion=3)
    z = _to_internal(builder, x, fmt, plan)
    cosh, sinh = cordic_sinh_cosh(builder, z, plan)
    sign, magnitude = split_magnitude(builder, sinh)
    quotient = divide_unsigned(
        builder, magnitude, cosh, n_frac=fmt.frac_bits
    )
    narrowed = truncate(quotient, fmt.width - 1) + [builder.zero]
    return conditional_negate(builder, sign, narrowed)


def sigmoid_cordic_via_tanh(
    builder: CircuitBuilder,
    x: Sequence[int],
    fmt: FixedPointFormat,
    plan: CordicPlan = None,
) -> Bus:
    """Cheaper sigmoid through ``sigmoid(x) = (1 + tanh(x/2)) / 2``.

    Halving the argument (a free shift) brings the required CORDIC
    domain down to the tanh plan's (|z| <= ~5.2 with three expansion
    stages instead of five), and the final fix-up is one free shift and
    a constant add — an optimization the paper's identity-based Sec. 4.2
    treatment invites but does not implement.  See the synthesis report
    for the gate savings vs :func:`sigmoid_cordic`.
    """
    plan = plan or hyperbolic_plan(frac_bits=fmt.frac_bits, expansion=3)
    half = shift_right_arith_const(builder, list(x), 1)
    t = tanh_cordic(builder, half, fmt, plan=plan)
    # (1 + t) / 2 with one extra fractional bit of headroom
    widened = sign_extend(builder, t, fmt.width + 1)
    one = builder.constant_bus(fmt.scale, fmt.width + 1)
    summed = ripple_add(builder, widened, one)
    halved = shift_right_arith_const(builder, summed, 1)
    return truncate(halved, fmt.width)


def sigmoid_via_tanh_reference(
    value: float, io_fmt: FixedPointFormat, plan: CordicPlan
) -> float:
    """Bit-exact software model of :func:`sigmoid_cordic_via_tanh`."""
    half = io_fmt.encode(value) >> 1
    t = io_fmt.encode(tanh_reference(io_fmt.decode(half), io_fmt, plan))
    return io_fmt.decode((t + io_fmt.scale) >> 1)


def sigmoid_cordic(
    builder: CircuitBuilder,
    x: Sequence[int],
    fmt: FixedPointFormat,
    plan: CordicPlan = None,
) -> Bus:
    """``SigmoidCORDIC``: ``1 / (1 + cosh(x) - sinh(x))`` (paper Sec. 4.2).

    ``cosh - sinh`` reconstructs ``e**-x`` inside the circuit; the default
    plan uses five range-expansion stages (``z_max ~= 9.7``) so the whole
    representable input range of the 1.3.12 format is inside the
    convergence domain.
    """
    plan = plan or hyperbolic_plan(frac_bits=fmt.frac_bits, expansion=5)
    z = _to_internal(builder, x, fmt, plan)
    cosh, sinh = cordic_sinh_cosh(builder, z, plan)
    exp_neg = ripple_sub(builder, cosh, sinh)
    one = builder.constant_bus(plan.internal.scale, plan.internal.width)
    denominator = ripple_add(builder, one, exp_neg)
    numerator = builder.constant_bus(plan.internal.scale, plan.internal.width)
    quotient = divide_unsigned(
        builder, numerator, denominator, n_frac=fmt.frac_bits
    )
    return truncate(quotient, fmt.width - 1) + [builder.zero]
