"""GC-optimized activation-function circuits (paper Table 3).

Every realization is registered in :data:`VARIANTS` under the exact name
used in the paper's Table 3, so the synthesis report and the benchmark
harness can enumerate them.
"""

from typing import Callable, Dict

from .common import apply_odd_symmetry, apply_point_symmetry, split_magnitude
from .cordic import (
    CordicPlan,
    cordic_sinh_cosh,
    hyperbolic_plan,
    rotate_reference,
    sigmoid_cordic,
    sigmoid_cordic_via_tanh,
    sigmoid_reference,
    sigmoid_via_tanh_reference,
    tanh_cordic,
    tanh_reference,
)
from .lut import (
    lut_lookup,
    sigmoid_lut,
    sigmoid_truncated,
    tanh_lut,
    tanh_truncated,
)
from .piecewise import (
    PiecewiseSpec,
    Segment,
    csd_digits,
    fit_piecewise,
    sigmoid_plan,
    sigmoid_plan_spec,
    tanh_piecewise,
    tanh_pl_spec,
)
from .softmax import softmax_argmax, softmax_max_value, softmax_onehot

#: Table 3 name -> circuit generator ``f(builder, x_bus, fmt) -> Bus``.
VARIANTS: Dict[str, Callable] = {
    "TanhLUT": tanh_lut,
    "Tanh2.10.12": tanh_truncated,
    "TanhPL": tanh_piecewise,
    "TanhCORDIC": tanh_cordic,
    "SigmoidLUT": sigmoid_lut,
    "Sigmoid3.10.12": sigmoid_truncated,
    "SigmoidPLAN": sigmoid_plan,
    "SigmoidCORDIC": sigmoid_cordic,
    "SigmoidCORDICviaTanh": sigmoid_cordic_via_tanh,
}

#: Compiler variant choice -> Table 3 realization per non-linearity.
#: The single source of truth shared by the model-to-netlist compiler
#: and the quantized reference tables, so the "bit-exact end to end"
#: guarantee cannot silently drift.
VARIANT_CIRCUITS: Dict[str, Dict[str, str]] = {
    "exact": {"tanh": "TanhLUT", "sigmoid": "SigmoidLUT"},
    "cordic": {"tanh": "TanhCORDIC", "sigmoid": "SigmoidCORDIC"},
    "truncated": {"tanh": "Tanh2.10.12", "sigmoid": "Sigmoid3.10.12"},
    "piecewise": {"tanh": "TanhPL", "sigmoid": "SigmoidPLAN"},
}

__all__ = [
    "VARIANTS",
    "VARIANT_CIRCUITS",
    "CordicPlan",
    "hyperbolic_plan",
    "rotate_reference",
    "cordic_sinh_cosh",
    "tanh_cordic",
    "sigmoid_cordic",
    "sigmoid_cordic_via_tanh",
    "tanh_reference",
    "sigmoid_reference",
    "sigmoid_via_tanh_reference",
    "tanh_lut",
    "sigmoid_lut",
    "tanh_truncated",
    "sigmoid_truncated",
    "tanh_piecewise",
    "sigmoid_plan",
    "tanh_pl_spec",
    "sigmoid_plan_spec",
    "fit_piecewise",
    "PiecewiseSpec",
    "Segment",
    "csd_digits",
    "lut_lookup",
    "softmax_argmax",
    "softmax_max_value",
    "softmax_onehot",
    "split_magnitude",
    "apply_odd_symmetry",
    "apply_point_symmetry",
]
