"""Look-up-table activation circuits (``TanhLUT`` / ``SigmoidLUT``).

A LUT over ``k`` secret select bits is a ``k``-level tree of word muxes
whose leaves are public constants.  Two structural facts keep it from
exploding (and are what the paper's synthesis flow exploits):

* the first mux level chooses between constant bits, which folds to a
  wire, its complement, or a constant — all free;
* equal subtrees (e.g. the saturated tail of tanh, where every entry is
  1.0) are deduplicated by the builder's structural hashing.

Both symmetries from the paper (Sec. 4.2) are applied: Tanh is odd
(``y(-x) = -y(x)``) and Sigmoid is point-symmetric about (0, 0.5)
(``y(-x) = 1 - y(x)``), so tables only cover ``x >= 0``.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence

from ...errors import CircuitError
from ..arith import shift_right_logic_const
from ..builder import Bus, CircuitBuilder
from ..fixedpoint import FixedPointFormat
from ..logic import mux_many
from .common import apply_odd_symmetry, apply_point_symmetry, split_magnitude

__all__ = [
    "lut_lookup",
    "tanh_lut",
    "sigmoid_lut",
    "tanh_truncated",
    "sigmoid_truncated",
]


def lut_lookup(
    builder: CircuitBuilder,
    select: Sequence[int],
    table: Sequence[int],
    out_width: int,
) -> Bus:
    """Select ``table[select]`` with a mux tree over constant words.

    Args:
        builder: target builder.
        select: LSB-first secret select bus (``k`` bits).
        table: ``2**k`` unsigned word values (two's-complement patterns).
        out_width: width of each table word in bits.

    Returns:
        The selected word as a bus.
    """
    if len(table) != 1 << len(select):
        raise CircuitError(
            f"table needs {1 << len(select)} entries, got {len(table)}"
        )
    options = [builder.constant_bus(value, out_width) for value in table]
    return mux_many(builder, list(select), options)


def _positive_table(
    fn: Callable[[float], float],
    in_fmt: FixedPointFormat,
    out_fmt: FixedPointFormat,
    index_bits: int,
    index_shift: int,
) -> List[int]:
    """Tabulate ``fn`` on non-negative inputs ``i << index_shift``."""
    table = []
    for i in range(1 << index_bits):
        x = (i << index_shift) / in_fmt.scale
        pattern = out_fmt.to_unsigned(out_fmt.encode(fn(x)))
        table.append(pattern)
    return table


def _saturate_magnitude(
    builder: CircuitBuilder, mag: Bus, keep_bits: int
) -> Bus:
    """Clamp an unsigned magnitude to ``2**keep_bits - 1``.

    Used by the truncated variants: the paper's ``Tanh 2.10.12`` sets the
    output to 1 for any ``x > 4`` by dropping the top integer bit after a
    saturating OR of the discarded high bits into the kept ones.
    """
    high = mag[keep_bits:]
    if not high:
        return list(mag)
    overflow = high[0]
    for wire in high[1:]:
        overflow = builder.emit_or(overflow, wire)
    # kept bits become all-ones when any high bit is set
    return [builder.emit_or(bit, overflow) for bit in mag[:keep_bits]]


def _odd_symmetric_lut(
    builder: CircuitBuilder,
    x: Sequence[int],
    fn: Callable[[float], float],
    in_fmt: FixedPointFormat,
    out_fmt: FixedPointFormat,
    drop_low_bits: int = 0,
    drop_high_bits: int = 0,
) -> Bus:
    """LUT for an odd function using ``y(-x) = -y(x)``."""
    sign, mag = split_magnitude(builder, x)
    if drop_low_bits:
        mag = shift_right_logic_const(builder, mag, drop_low_bits)[
            : len(mag) - drop_low_bits
        ]
    keep = len(mag) - drop_high_bits
    if drop_high_bits:
        mag = _saturate_magnitude(builder, mag, keep)
    table = _positive_table(fn, in_fmt, out_fmt, keep, drop_low_bits)
    y = lut_lookup(builder, mag, table, out_fmt.width)
    return apply_odd_symmetry(builder, sign, y)


def _point_symmetric_lut(
    builder: CircuitBuilder,
    x: Sequence[int],
    fn: Callable[[float], float],
    in_fmt: FixedPointFormat,
    out_fmt: FixedPointFormat,
    drop_low_bits: int = 0,
    drop_high_bits: int = 0,
) -> Bus:
    """LUT for a function with ``y(-x) = 1 - y(x)`` (sigmoid family)."""
    sign, mag = split_magnitude(builder, x)
    if drop_low_bits:
        mag = shift_right_logic_const(builder, mag, drop_low_bits)[
            : len(mag) - drop_low_bits
        ]
    keep = len(mag) - drop_high_bits
    if drop_high_bits:
        mag = _saturate_magnitude(builder, mag, keep)
    table = _positive_table(fn, in_fmt, out_fmt, keep, drop_low_bits)
    y = lut_lookup(builder, mag, table, out_fmt.width)
    return apply_point_symmetry(builder, sign, y, out_fmt.frac_bits)


def tanh_lut(
    builder: CircuitBuilder,
    x: Sequence[int],
    fmt: FixedPointFormat,
) -> Bus:
    """``TanhLUT``: exact table over the full input domain (error 0)."""
    return _odd_symmetric_lut(builder, x, math.tanh, fmt, fmt)


def tanh_truncated(
    builder: CircuitBuilder,
    x: Sequence[int],
    fmt: FixedPointFormat,
    drop_low_bits: int = 2,
    drop_high_bits: int = 1,
) -> Bus:
    """``Tanh 2.10.12``: drop 2 LSBs and the top integer bit of ``x``.

    Inputs above the reduced range saturate (``tanh(x) = 1`` for x > 4),
    reproducing the paper's 0.01%-error variant at a fraction of the
    full-LUT cost.
    """
    return _odd_symmetric_lut(
        builder,
        x,
        math.tanh,
        fmt,
        fmt,
        drop_low_bits=drop_low_bits,
        drop_high_bits=drop_high_bits,
    )


def sigmoid_lut(
    builder: CircuitBuilder,
    x: Sequence[int],
    fmt: FixedPointFormat,
) -> Bus:
    """``SigmoidLUT``: exact table over the full input domain (error 0)."""
    return _point_symmetric_lut(
        builder, x, lambda v: 1.0 / (1.0 + math.exp(-v)), fmt, fmt
    )


def sigmoid_truncated(
    builder: CircuitBuilder,
    x: Sequence[int],
    fmt: FixedPointFormat,
    drop_low_bits: int = 2,
    drop_high_bits: int = 0,
) -> Bus:
    """``Sigmoid 3.10.12``: keep all 3 integer bits, drop 2 LSBs."""
    return _point_symmetric_lut(
        builder,
        x,
        lambda v: 1.0 / (1.0 + math.exp(-v)),
        fmt,
        fmt,
        drop_low_bits=drop_low_bits,
        drop_high_bits=drop_high_bits,
    )
