"""Piecewise-linear activation circuits (``TanhPL`` / ``SigmoidPLAN``).

The cheap activation variants in Table 3 replace the non-linearity with a
handful of line segments whose slopes are sums of a few signed powers of
two, so the "multiplication" degenerates into free shifts plus one or two
adders (the PLAN approximation of Amin, Curtis & Hayes-Gill is the classic
example and is reproduced verbatim).  A generic minimax-ish fitter is
included so other activations can be lowered the same way.
"""

from __future__ import annotations

import dataclasses
import math
from functools import lru_cache
from typing import Callable, List, Sequence, Tuple

import numpy as np

from ...errors import CircuitError
from ..arith import conditional_add_sub, less_than, ripple_add
from ..builder import Bus, CircuitBuilder
from ..fixedpoint import FixedPointFormat
from .common import apply_odd_symmetry, apply_point_symmetry, split_magnitude

__all__ = [
    "csd_digits",
    "constant_multiply_positive",
    "Segment",
    "PiecewiseSpec",
    "fit_piecewise",
    "piecewise_positive",
    "tanh_piecewise",
    "sigmoid_plan",
    "sigmoid_plan_spec",
    "tanh_pl_spec",
]


def csd_digits(value: int, max_digits: int = 0) -> List[Tuple[int, int]]:
    """Canonical-signed-digit decomposition of a non-negative integer.

    Returns ``[(sign, position), ...]`` with ``sign`` in {+1, -1} such
    that ``value == sum(sign << position)`` and no two positions are
    adjacent (the CSD property, which minimizes the number of adders in a
    constant multiplier).

    Args:
        value: non-negative integer to decompose.
        max_digits: when positive, raise if more digits would be needed.
    """
    if value < 0:
        raise CircuitError("csd_digits expects a non-negative value")
    digits: List[Tuple[int, int]] = []
    position = 0
    while value:
        if value & 1:
            remainder = value & 3
            if remainder == 3:  # ...11 -> +4 -1
                digits.append((-1, position))
                value += 1
            else:
                digits.append((1, position))
                value -= 1
        value >>= 1
        position += 1
    if max_digits and len(digits) > max_digits:
        raise CircuitError(
            f"constant needs {len(digits)} CSD digits, limit {max_digits}"
        )
    return digits


def quantize_slope_csd(
    slope: float, frac_bits: int, max_digits: int
) -> Tuple[int, List[Tuple[int, int]]]:
    """Quantize a non-negative slope to at most ``max_digits`` CSD digits.

    Greedy residual matching: repeatedly subtract the closest signed power
    of two.  Returns ``(fixed_value, digits)`` where ``fixed_value`` is
    the realized slope scaled by ``2**frac_bits``.
    """
    if slope < 0:
        raise CircuitError("slopes must be non-negative here")
    target = slope * (1 << frac_bits)
    digits: List[Tuple[int, int]] = []
    residual = target
    for _ in range(max_digits):
        if abs(residual) < 0.5:
            break
        power = int(round(math.log2(abs(residual)))) if residual else 0
        sign = 1 if residual > 0 else -1
        digits.append((sign, power))
        residual -= sign * (1 << power) if power >= 0 else sign * 2.0 ** power
    value = sum(sign * (1 << pos) for sign, pos in digits if pos >= 0)
    value += sum(sign * 2.0 ** pos for sign, pos in digits if pos < 0)
    return int(round(value)), digits


def constant_multiply_positive(
    builder: CircuitBuilder,
    x: Sequence[int],
    constant: int,
    frac_bits: int,
    out_width: int,
) -> Bus:
    """Multiply an *unsigned* bus by a non-negative constant, then ``>> frac_bits``.

    The constant is decomposed into CSD digits so each term is a free
    shift of ``x``; terms are combined with one adder/subtractor each.
    Truncation (``>> frac_bits``) is folded into the shifts.
    """
    if constant < 0:
        raise CircuitError("constant must be non-negative")
    digits = csd_digits(constant)
    if not digits:
        return [builder.zero] * out_width
    padded = list(x) + [builder.zero] * (frac_bits + out_width)

    def term(position: int) -> Bus:
        shift = frac_bits - position
        if shift >= 0:
            shifted = padded[shift : shift + out_width]
        else:
            shifted = [builder.zero] * (-shift) + padded[: out_width + shift]
        return list(shifted)

    # start from the highest digit (always +1 in CSD)
    digits_sorted = sorted(digits, key=lambda d: -d[1])
    acc = term(digits_sorted[0][1])
    for sign, position in digits_sorted[1:]:
        operand = term(position)
        sub = builder.one if sign < 0 else builder.zero
        acc = conditional_add_sub(builder, acc, operand, sub)
    return acc


@dataclasses.dataclass(frozen=True)
class Segment:
    """One line segment ``y = slope * x + intercept`` on ``x >= lower``."""

    lower: float
    slope: float
    intercept: float


@dataclasses.dataclass(frozen=True)
class PiecewiseSpec:
    """A piecewise-linear approximation of ``f`` on ``x >= 0``.

    Attributes:
        name: label used in reports.
        segments: ascending by ``lower``; ``segments[0].lower`` must be 0.
        symmetry: ``"odd"`` (tanh-like) or ``"point"`` (sigmoid-like).
    """

    name: str
    segments: Tuple[Segment, ...]
    symmetry: str = "odd"

    def __post_init__(self) -> None:
        if not self.segments or self.segments[0].lower != 0.0:
            raise CircuitError("first segment must start at 0")
        lowers = [s.lower for s in self.segments]
        if lowers != sorted(lowers):
            raise CircuitError("segments must be ascending")
        if self.symmetry not in ("odd", "point"):
            raise CircuitError("symmetry must be 'odd' or 'point'")

    def evaluate_positive(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the approximation (float semantics) for ``x >= 0``."""
        x = np.asarray(x, dtype=np.float64)
        result = np.zeros_like(x)
        for seg in self.segments:
            mask = x >= seg.lower
            result = np.where(mask, seg.slope * x + seg.intercept, result)
        return result

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """Evaluate on any sign using the declared symmetry."""
        x = np.asarray(x, dtype=np.float64)
        pos = self.evaluate_positive(np.abs(x))
        if self.symmetry == "odd":
            return np.where(x < 0, -pos, pos)
        return np.where(x < 0, 1.0 - pos, pos)

    def max_error(
        self, fn: Callable[[np.ndarray], np.ndarray], domain: float
    ) -> float:
        """Max absolute deviation from ``fn`` over ``[-domain, domain]``."""
        xs = np.linspace(-domain, domain, 20001)
        return float(np.max(np.abs(self.evaluate(xs) - fn(xs))))


def fit_piecewise(
    fn: Callable[[np.ndarray], np.ndarray],
    n_segments: int,
    x_max: float,
    saturation: float,
    frac_bits: int = 12,
    max_slope_digits: int = 3,
    symmetry: str = "odd",
    name: str = "piecewise",
    iterations: int = 60,
) -> PiecewiseSpec:
    """Fit ``n_segments`` minimax-balanced line segments to ``fn`` on [0, x_max].

    A final saturation segment at ``x >= x_max`` outputs ``saturation``.
    Knots are iteratively moved to balance per-segment minimax error
    (a light-weight Remez analogue); slopes are then quantized to CSD
    form with ``max_slope_digits`` digits and intercepts re-centered.
    """
    inner = n_segments - 1
    if inner < 1:
        raise CircuitError("need at least two segments (one + saturation)")
    knots = np.linspace(0.0, x_max, inner + 1)
    grid = np.linspace(0.0, x_max, 4096)
    values = fn(grid)

    def segment_error(lo: float, hi: float) -> Tuple[float, float, float]:
        mask = (grid >= lo) & (grid <= hi)
        xs, ys = grid[mask], values[mask]
        if len(xs) < 2:
            return 0.0, 0.0, float(ys[0]) if len(ys) else 0.0
        slope = (fn(np.array([hi]))[0] - fn(np.array([lo]))[0]) / (hi - lo)
        resid = ys - slope * xs
        intercept = 0.5 * (resid.max() + resid.min())
        err = 0.5 * (resid.max() - resid.min())
        return err, slope, intercept

    for _ in range(iterations):
        errors = np.array(
            [segment_error(knots[i], knots[i + 1])[0] for i in range(inner)]
        )
        mean_err = errors.mean()
        if mean_err <= 0:
            break
        widths = np.diff(knots)
        # shrink high-error segments, grow low-error ones
        adjust = np.sqrt(mean_err / np.maximum(errors, 1e-12))
        new_widths = widths * np.clip(adjust, 0.8, 1.25)
        new_widths *= x_max / new_widths.sum()
        knots = np.concatenate([[0.0], np.cumsum(new_widths)])
        knots[-1] = x_max

    segments: List[Segment] = []
    quantum = 1.0 / (1 << frac_bits)
    for i in range(inner):
        _, slope, intercept = segment_error(knots[i], knots[i + 1])
        fixed_slope, _ = quantize_slope_csd(
            max(slope, 0.0), frac_bits, max_slope_digits
        )
        q_slope = fixed_slope * quantum
        mask = (grid >= knots[i]) & (grid <= knots[i + 1])
        resid = values[mask] - q_slope * grid[mask]
        q_intercept = (
            round(float(0.5 * (resid.max() + resid.min())) / quantum) * quantum
            if mask.any()
            else intercept
        )
        segments.append(Segment(float(knots[i]), q_slope, q_intercept))
    segments.append(
        Segment(float(x_max), 0.0, round(saturation / quantum) * quantum)
    )
    return PiecewiseSpec(name=name, segments=tuple(segments), symmetry=symmetry)


def piecewise_positive(
    builder: CircuitBuilder,
    mag: Sequence[int],
    spec: PiecewiseSpec,
    fmt: FixedPointFormat,
) -> Bus:
    """Evaluate ``spec`` on an unsigned magnitude bus.

    Each segment value is produced with a CSD constant multiplier plus a
    constant-intercept add; segment selection uses one comparator and one
    word mux per boundary (monotone mux chain).
    """
    width = fmt.width
    outputs: List[Bus] = []
    for seg in spec.segments:
        fixed_slope = int(round(seg.slope * fmt.scale))
        term = constant_multiply_positive(
            builder, mag, fixed_slope, fmt.frac_bits, width
        )
        fixed_intercept = int(round(seg.intercept * fmt.scale))
        if fixed_intercept:
            const = builder.constant_bus(fixed_intercept & ((1 << width) - 1), width)
            term = ripple_add(builder, term, const)
        outputs.append(term)
    result = outputs[0]
    for seg, candidate in zip(spec.segments[1:], outputs[1:]):
        bound = int(round(seg.lower * fmt.scale))
        const = builder.constant_bus(bound, len(mag))
        below = less_than(builder, list(mag), const)
        in_segment = builder.emit_not(below)
        result = builder.emit_mux_bus(in_segment, candidate, result)
    return result


def _piecewise_activation(
    builder: CircuitBuilder,
    x: Sequence[int],
    spec: PiecewiseSpec,
    fmt: FixedPointFormat,
) -> Bus:
    sign, mag = split_magnitude(builder, x)
    y = piecewise_positive(builder, mag, spec, fmt)
    if spec.symmetry == "odd":
        return apply_odd_symmetry(builder, sign, y)
    return apply_point_symmetry(builder, sign, y, fmt.frac_bits)


@lru_cache(maxsize=None)
def tanh_pl_spec(n_segments: int = 7, frac_bits: int = 12) -> PiecewiseSpec:
    """The paper's ``TanhPL``: seven lines for ``x >= 0``.

    With seven segments this fitter reaches ~0.49% max error; the paper
    quotes 0.22%, which our minimax floor analysis shows requires ~12
    segments (see EXPERIMENTS.md) — pass ``n_segments=12`` to match it.
    """
    return fit_piecewise(
        np.tanh,
        n_segments=n_segments,
        x_max=3.5,
        saturation=1.0,
        frac_bits=frac_bits,
        symmetry="odd",
        name=f"TanhPL{n_segments}",
    )


@lru_cache(maxsize=None)
def sigmoid_plan_spec() -> PiecewiseSpec:
    """The PLAN sigmoid of Amin, Curtis & Hayes-Gill (paper's ``SigmoidPLAN``).

    All slopes are single powers of two, so the circuit needs no true
    multiplier at all — Table 3 prices it at 73 non-XOR gates.
    """
    return PiecewiseSpec(
        name="SigmoidPLAN",
        symmetry="point",
        segments=(
            Segment(0.0, 0.25, 0.5),
            Segment(1.0, 0.125, 0.625),
            Segment(2.375, 0.03125, 0.84375),
            Segment(5.0, 0.0, 1.0),
        ),
    )


def tanh_piecewise(
    builder: CircuitBuilder,
    x: Sequence[int],
    fmt: FixedPointFormat,
    spec: PiecewiseSpec = None,
) -> Bus:
    """``TanhPL`` circuit (7 quantized segments by default)."""
    spec = spec or tanh_pl_spec(frac_bits=fmt.frac_bits)
    return _piecewise_activation(builder, x, spec, fmt)


def sigmoid_plan(
    builder: CircuitBuilder,
    x: Sequence[int],
    fmt: FixedPointFormat,
) -> Bus:
    """``SigmoidPLAN`` circuit (shift-only slopes)."""
    return _piecewise_activation(builder, x, sigmoid_plan_spec(), fmt)
