"""Shared helpers for activation circuits: symmetry post-processing.

The paper exploits that Sigmoid has a symmetry point at (0, 0.5) and Tanh
is odd (Sec. 4.2), so every realization computes on ``|x|`` and fixes up
the sign afterwards.  These helpers implement the two fix-ups.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..arith import absolute, conditional_negate
from ..builder import Bus, CircuitBuilder

__all__ = ["split_magnitude", "apply_odd_symmetry", "apply_point_symmetry"]


def split_magnitude(
    builder: CircuitBuilder, x: Sequence[int]
) -> Tuple[int, Bus]:
    """Split a signed bus into ``(sign_wire, magnitude_bus)``.

    The magnitude drops the (always zero after :func:`absolute`) sign
    position, so it is one bit narrower than the input.  The encoder's
    symmetric saturation guarantees INT_MIN never occurs.
    """
    sign = x[-1]
    magnitude = absolute(builder, x)[:-1]
    return sign, magnitude


def apply_odd_symmetry(
    builder: CircuitBuilder, sign: int, y: Sequence[int]
) -> Bus:
    """Extend ``y = f(|x|)`` of an odd ``f`` back to signed inputs."""
    return conditional_negate(builder, sign, y)


def apply_point_symmetry(
    builder: CircuitBuilder, sign: int, y: Sequence[int], frac_bits: int
) -> Bus:
    """Extend ``y = f(|x|)`` of a (0, 0.5)-symmetric ``f`` to signed inputs.

    Computes ``sign ? 1 - y : y`` as a conditional negate followed by a
    conditional increment at the position of 1.0 (``frac_bits``), which
    costs one extra AND chain over the high bits only.
    """
    negated = conditional_negate(builder, sign, y)
    out: Bus = list(negated[:frac_bits])
    carry = sign
    for i in range(frac_bits, len(negated)):
        bit = negated[i]
        out.append(builder.emit_xor(bit, carry))
        if i != len(negated) - 1:
            carry = builder.emit_and(bit, carry)
    return out
