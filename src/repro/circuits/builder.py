"""Netlist construction with GC-aware peephole optimization.

The paper drives Synopsys Design Compiler with a custom library whose area
model makes XOR free and every other gate cost one unit, so the synthesizer
minimizes the non-XOR count (Sec. 3.4).  :class:`CircuitBuilder` plays that
role here: every ``emit_*`` call applies constant folding, operand
canonicalization and structural hashing *before* a gate is materialized,
so the produced netlists are already optimized under the same cost model.

Buses are plain lists of wire ids, least-significant bit first.  All
arithmetic helpers live in :mod:`repro.circuits.arith` and
:mod:`repro.circuits.logic`; this module only provides single-bit emitters
and wire bookkeeping.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import CircuitError
from .gates import Gate, GateType
from .netlist import CONST_ONE, CONST_ZERO, Circuit

__all__ = ["CircuitBuilder", "Bus"]

#: A bus is an LSB-first list of wire ids.
Bus = List[int]


class CircuitBuilder:
    """Incrementally builds a topologically ordered :class:`Circuit`.

    Args:
        name: circuit name used in reports.
        use_structural_hashing: reuse an existing gate when an identical
            (op, inputs) combination was already emitted.  On by default;
            disable to measure the benefit in synthesis ablations.
        fold_constants: apply boolean simplification against the constant
            wires.  On by default.
    """

    def __init__(
        self,
        name: str = "circuit",
        use_structural_hashing: bool = True,
        fold_constants: bool = True,
    ) -> None:
        self.name = name
        self._hashing = use_structural_hashing
        self._folding = fold_constants
        # wires 0 and 1 are the constants
        self._n_wires = 2
        self._n_alice = 0
        self._n_bob = 0
        self._n_state = 0
        self._inputs_frozen = False
        self._gates: List[Gate] = []
        self._cache: Dict[Tuple[GateType, int, Optional[int]], int] = {}
        self._not_of: Dict[int, int] = {CONST_ZERO: CONST_ONE, CONST_ONE: CONST_ZERO}
        self._outputs: List[int] = []
        self._input_names: Dict[str, List[int]] = {}
        self._output_names: Dict[str, List[int]] = {}

    # -- wire allocation -------------------------------------------------

    @property
    def zero(self) -> int:
        """The constant-0 wire."""
        return CONST_ZERO

    @property
    def one(self) -> int:
        """The constant-1 wire."""
        return CONST_ONE

    def add_alice_inputs(self, count: int, name: Optional[str] = None) -> Bus:
        """Allocate ``count`` input wires owned by Alice (garbler/client)."""
        return self._add_inputs(count, party="alice", name=name)

    def add_bob_inputs(self, count: int, name: Optional[str] = None) -> Bus:
        """Allocate ``count`` input wires owned by Bob (evaluator/server)."""
        return self._add_inputs(count, party="bob", name=name)

    def add_state_inputs(self, count: int, name: Optional[str] = None) -> Bus:
        """Allocate register-state wires (sequential circuits).

        Note: Alice and Bob inputs must be declared before state wires so
        the wire-numbering convention holds.
        """
        return self._add_inputs(count, party="state", name=name)

    def _add_inputs(self, count: int, party: str, name: Optional[str]) -> Bus:
        if self._inputs_frozen:
            raise CircuitError(
                "all inputs must be declared before the first gate is emitted"
            )
        if count < 0:
            raise CircuitError("input count must be non-negative")
        start = self._n_wires
        bus = list(range(start, start + count))
        self._n_wires += count
        if party == "alice":
            if self._n_bob or self._n_state:
                raise CircuitError("Alice inputs must precede Bob/state wires")
            self._n_alice += count
        elif party == "bob":
            if self._n_state:
                raise CircuitError("Bob inputs must precede state wires")
            self._n_bob += count
        else:
            self._n_state += count
        if name:
            self._input_names.setdefault(name, []).extend(bus)
        return bus

    def _fresh_wire(self) -> int:
        self._inputs_frozen = True
        wire = self._n_wires
        self._n_wires += 1
        return wire

    def constant_bus(self, value: int, width: int) -> Bus:
        """A bus holding the two's-complement constant ``value``."""
        return [
            CONST_ONE if (value >> i) & 1 else CONST_ZERO for i in range(width)
        ]

    # -- single-bit emitters ----------------------------------------------

    def emit_not(self, a: int) -> int:
        """NOT gate (free under free-XOR)."""
        cached = self._not_of.get(a)
        if cached is not None:
            return cached
        out = self._emit(GateType.NOT, a, None)
        self._not_of[a] = out
        self._not_of[out] = a
        return out

    def emit_xor(self, a: int, b: int) -> int:
        """XOR gate (free)."""
        if self._folding:
            if a == b:
                return CONST_ZERO
            if a == CONST_ZERO:
                return b
            if b == CONST_ZERO:
                return a
            if a == CONST_ONE:
                return self.emit_not(b)
            if b == CONST_ONE:
                return self.emit_not(a)
            if self._not_of.get(a) == b:
                return CONST_ONE
        if b < a:
            a, b = b, a
        return self._emit(GateType.XOR, a, b)

    def emit_xnor(self, a: int, b: int) -> int:
        """XNOR gate (free)."""
        return self.emit_not(self.emit_xor(a, b))

    def emit_and(self, a: int, b: int) -> int:
        """AND gate (one garbled table)."""
        if self._folding:
            if a == b:
                return a
            if CONST_ZERO in (a, b):
                return CONST_ZERO
            if a == CONST_ONE:
                return b
            if b == CONST_ONE:
                return a
            if self._not_of.get(a) == b:
                return CONST_ZERO
        if b < a:
            a, b = b, a
        return self._emit(GateType.AND, a, b)

    def emit_or(self, a: int, b: int) -> int:
        """OR gate (one garbled table)."""
        if self._folding:
            if a == b:
                return a
            if CONST_ONE in (a, b):
                return CONST_ONE
            if a == CONST_ZERO:
                return b
            if b == CONST_ZERO:
                return a
            if self._not_of.get(a) == b:
                return CONST_ONE
        if b < a:
            a, b = b, a
        return self._emit(GateType.OR, a, b)

    def emit_nand(self, a: int, b: int) -> int:
        """NAND gate (one garbled table)."""
        return self.emit_not(self.emit_and(a, b))

    def emit_nor(self, a: int, b: int) -> int:
        """NOR gate (one garbled table)."""
        return self.emit_not(self.emit_or(a, b))

    def emit_andn(self, a: int, b: int) -> int:
        """``a AND (NOT b)`` (one garbled table)."""
        if self._folding:
            if a == b:
                return CONST_ZERO
            if a == CONST_ZERO or b == CONST_ONE:
                return CONST_ZERO
            if b == CONST_ZERO:
                return a
            if a == CONST_ONE:
                return self.emit_not(b)
            if self._not_of.get(a) == b:
                return a
        return self._emit(GateType.ANDN, a, b)

    def emit_mux(self, sel: int, if_true: int, if_false: int) -> int:
        """2-to-1 multiplexer: ``sel ? if_true : if_false``.

        Implemented with the single-AND construction
        ``out = if_false ^ (sel & (if_true ^ if_false))`` so it costs one
        non-XOR gate — the paper's point that a ReLu "can be accurately
        represented by a Multiplexer" relies on this cheapness.
        """
        if if_true == if_false:
            return if_true
        diff = self.emit_xor(if_true, if_false)
        gated = self.emit_and(sel, diff)
        return self.emit_xor(if_false, gated)

    def _emit(self, op: GateType, a: int, b: Optional[int]) -> int:
        key = (op, a, b)
        if self._hashing:
            cached = self._cache.get(key)
            if cached is not None:
                return cached
        out = self._fresh_wire()
        self._gates.append(Gate(op, a, b, out))
        if self._hashing:
            self._cache[key] = out
        return out

    # -- bus helpers -------------------------------------------------------

    def emit_xor_bus(self, a: Sequence[int], b: Sequence[int]) -> Bus:
        """Bitwise XOR of two equal-width buses."""
        self._check_widths(a, b)
        return [self.emit_xor(x, y) for x, y in zip(a, b)]

    def emit_and_bus(self, a: Sequence[int], b: Sequence[int]) -> Bus:
        """Bitwise AND of two equal-width buses."""
        self._check_widths(a, b)
        return [self.emit_and(x, y) for x, y in zip(a, b)]

    def emit_not_bus(self, a: Sequence[int]) -> Bus:
        """Bitwise NOT of a bus."""
        return [self.emit_not(x) for x in a]

    def emit_mux_bus(
        self, sel: int, if_true: Sequence[int], if_false: Sequence[int]
    ) -> Bus:
        """Word-level 2-to-1 mux (``width`` non-XOR gates)."""
        self._check_widths(if_true, if_false)
        return [
            self.emit_mux(sel, t, f) for t, f in zip(if_true, if_false)
        ]

    def _check_widths(self, a: Sequence[int], b: Sequence[int]) -> None:
        if len(a) != len(b):
            raise CircuitError(
                f"bus width mismatch: {len(a)} vs {len(b)}"
            )

    # -- outputs and finalization -------------------------------------------

    def mark_output(self, wire: int, name: Optional[str] = None) -> None:
        """Register a single output wire."""
        self._outputs.append(wire)
        if name:
            self._output_names.setdefault(name, []).append(wire)

    def mark_output_bus(self, bus: Sequence[int], name: Optional[str] = None) -> None:
        """Register an LSB-first bus as consecutive outputs."""
        for wire in bus:
            self.mark_output(wire, name=name)

    @property
    def gate_count(self) -> int:
        """Gates emitted so far."""
        return len(self._gates)

    def non_xor_count(self) -> int:
        """Non-free gates emitted so far."""
        return sum(1 for g in self._gates if not g.op.is_free)

    def build(self) -> Circuit:
        """Finalize and validate the netlist."""
        circuit = Circuit(
            n_alice=self._n_alice,
            n_bob=self._n_bob,
            gates=list(self._gates),
            outputs=list(self._outputs),
            n_wires=self._n_wires,
            name=self.name,
            input_names=dict(self._input_names),
            output_names=dict(self._output_names),
            n_state=self._n_state,
        )
        circuit.validate()
        return circuit
