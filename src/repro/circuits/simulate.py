"""Plaintext netlist simulation.

The simulator is the ground truth for every other component: synthesis
passes must preserve its output, and the garbled evaluation must decode to
exactly the bits it produces.  It evaluates gates in netlist order, which
is topological by construction.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..errors import CircuitError
from .netlist import CONST_ONE, CONST_ZERO, Circuit

__all__ = ["simulate", "simulate_words", "bits_from_int", "int_from_bits"]


def bits_from_int(value: int, width: int) -> List[int]:
    """Two's-complement little-endian bit decomposition of ``value``."""
    return [(value >> i) & 1 for i in range(width)]


def int_from_bits(bits: Sequence[int], signed: bool = False) -> int:
    """Recompose an LSB-first bit vector into an integer.

    Args:
        bits: LSB-first bit values.
        signed: interpret the most significant bit as a two's-complement
            sign bit.
    """
    value = 0
    for i, bit in enumerate(bits):
        value |= (bit & 1) << i
    if signed and bits and (bits[-1] & 1):
        value -= 1 << len(bits)
    return value


def simulate(
    circuit: Circuit,
    alice_bits: Sequence[int],
    bob_bits: Sequence[int],
    state_bits: Sequence[int] = (),
) -> List[int]:
    """Evaluate ``circuit`` on plaintext bits.

    Args:
        circuit: netlist to evaluate.
        alice_bits: garbler-side input bits, LSB-first per declared bus.
        bob_bits: evaluator-side input bits.
        state_bits: register state (sequential circuits only).

    Returns:
        Output bits in the order they were marked.
    """
    values = bytearray(circuit.n_wires)
    assignment = circuit.input_assignment(alice_bits, bob_bits, state_bits)
    for wire, bit in assignment.items():
        values[wire] = bit
    values[CONST_ZERO] = 0
    values[CONST_ONE] = 1
    for gate in circuit.gates:
        if gate.b is None:
            values[gate.out] = gate.eval(values[gate.a])
        else:
            values[gate.out] = gate.eval(values[gate.a], values[gate.b])
    return [values[w] for w in circuit.outputs]


def simulate_words(
    circuit: Circuit,
    alice_words: Dict[str, int],
    bob_words: Dict[str, int],
    output_widths: Dict[str, int],
) -> Dict[str, int]:
    """Simulate using named input/output buses instead of raw bit vectors.

    Word values are encoded little-endian into the named input buses; the
    named output buses are recomposed as unsigned integers.

    Args:
        circuit: netlist with ``input_names`` / ``output_names`` populated.
        alice_words: name -> integer for Alice-owned buses.
        bob_words: name -> integer for Bob-owned buses.
        output_widths: names of output buses to decode (values unused,
            widths come from the circuit).

    Returns:
        name -> unsigned integer value of each requested output bus.
    """
    alice_bits = [0] * circuit.n_alice
    bob_bits = [0] * circuit.n_bob
    alice_base = 2
    bob_base = 2 + circuit.n_alice
    for name, value in {**alice_words, **bob_words}.items():
        wires = circuit.input_names.get(name)
        if wires is None:
            raise CircuitError(f"unknown input bus {name!r}")
        for i, wire in enumerate(wires):
            bit = (value >> i) & 1
            if wire >= bob_base:
                bob_bits[wire - bob_base] = bit
            else:
                alice_bits[wire - alice_base] = bit
    out_bits = simulate(circuit, alice_bits, bob_bits)
    by_wire = dict(zip(circuit.outputs, out_bits))
    result: Dict[str, int] = {}
    for name in output_widths:
        wires = circuit.output_names.get(name)
        if wires is None:
            raise CircuitError(f"unknown output bus {name!r}")
        result[name] = int_from_bits([by_wire[w] for w in wires])
    return result
