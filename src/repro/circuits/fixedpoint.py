"""Fixed-point number format used throughout DeepSecure.

The paper evaluates with a 16-bit format: 1 sign bit, 3 integer bits and
12 fractional bits (Sec. 4.2), giving a representational error bounded by
``2**-(frac_bits+1)``.  :class:`FixedPointFormat` encodes/decodes between
floats, two's-complement integers and LSB-first bit vectors, with numpy
vectorized variants for tensor quantization.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Union

import numpy as np

from ..errors import QuantizationError

__all__ = ["FixedPointFormat", "DEFAULT_FORMAT"]

ArrayLike = Union[float, Sequence[float], np.ndarray]


@dataclasses.dataclass(frozen=True)
class FixedPointFormat:
    """Signed fixed-point format ``Q<int_bits>.<frac_bits>`` plus sign.

    Attributes:
        int_bits: number of integer (magnitude) bits.
        frac_bits: number of fractional bits.
    """

    int_bits: int = 3
    frac_bits: int = 12

    def __post_init__(self) -> None:
        if self.int_bits < 0 or self.frac_bits < 0:
            raise QuantizationError("bit counts must be non-negative")
        if self.width > 64:
            raise QuantizationError("formats wider than 64 bits unsupported")

    @property
    def width(self) -> int:
        """Total width in bits including the sign bit."""
        return 1 + self.int_bits + self.frac_bits

    @property
    def scale(self) -> int:
        """Integer scale factor ``2**frac_bits``."""
        return 1 << self.frac_bits

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        return ((1 << (self.width - 1)) - 1) / self.scale

    @property
    def min_value(self) -> float:
        """Smallest value the encoder produces.

        Saturation is symmetric (``-max_value``) so that negation and
        absolute value never overflow inside circuits; the all-ones-MSB
        pattern ``-2**(width-1)`` is representable but never emitted.
        """
        return -((1 << (self.width - 1)) - 1) / self.scale

    @property
    def resolution(self) -> float:
        """Quantization step ``2**-frac_bits``."""
        return 1.0 / self.scale

    @property
    def representational_error(self) -> float:
        """Paper's bound on truncation error: ``2**-(frac_bits+1)``."""
        return 2.0 ** -(self.frac_bits + 1)

    # -- scalar conversions -------------------------------------------------

    def encode(self, value: float, saturate: bool = True) -> int:
        """Quantize a float to the signed integer representation.

        Args:
            value: real number to encode.
            saturate: clamp to the representable range instead of raising.

        Returns:
            Signed integer in ``[-2**(w-1), 2**(w-1) - 1]``.
        """
        raw = int(round(float(value) * self.scale))
        high = (1 << (self.width - 1)) - 1
        low = -high
        if raw < low or raw > high:
            if not saturate:
                raise QuantizationError(
                    f"{value} out of range for {self!r}"
                )
            raw = min(max(raw, low), high)
        return raw

    def decode(self, raw: int) -> float:
        """Convert a signed integer representation back to a float."""
        return raw / self.scale

    def to_unsigned(self, raw: int) -> int:
        """Map a signed representation to its two's-complement bit pattern."""
        return raw & ((1 << self.width) - 1)

    def from_unsigned(self, pattern: int) -> int:
        """Map a two's-complement bit pattern to the signed representation."""
        pattern &= (1 << self.width) - 1
        if pattern >> (self.width - 1):
            pattern -= 1 << self.width
        return pattern

    # -- bit-vector conversions ----------------------------------------------

    def to_bits(self, value: float, saturate: bool = True) -> List[int]:
        """Encode a float to an LSB-first bit vector of ``width`` bits."""
        pattern = self.to_unsigned(self.encode(value, saturate=saturate))
        return [(pattern >> i) & 1 for i in range(self.width)]

    def from_bits(self, bits: Sequence[int]) -> float:
        """Decode an LSB-first bit vector back to a float."""
        if len(bits) != self.width:
            raise QuantizationError(
                f"expected {self.width} bits, got {len(bits)}"
            )
        pattern = 0
        for i, bit in enumerate(bits):
            pattern |= (bit & 1) << i
        return self.decode(self.from_unsigned(pattern))

    # -- vectorized conversions ------------------------------------------------

    def encode_array(self, values: ArrayLike) -> np.ndarray:
        """Vectorized :meth:`encode` with saturation; returns int64 array."""
        arr = np.asarray(values, dtype=np.float64)
        raw = np.rint(arr * self.scale).astype(np.int64)
        high = (1 << (self.width - 1)) - 1
        return np.clip(raw, -high, high)

    def decode_array(self, raw: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`decode`."""
        return np.asarray(raw, dtype=np.float64) / self.scale

    def quantize_array(self, values: ArrayLike) -> np.ndarray:
        """Round-trip floats through the format (quantization operator)."""
        return self.decode_array(self.encode_array(values))

    def quantization_error(self, values: ArrayLike) -> float:
        """Max absolute error introduced by quantizing ``values``."""
        arr = np.asarray(values, dtype=np.float64)
        return float(np.max(np.abs(arr - self.quantize_array(arr)))) if arr.size else 0.0

    def describe(self) -> str:
        """Human-readable summary, e.g. ``fixed<1.3.12>``."""
        return f"fixed<1.{self.int_bits}.{self.frac_bits}>"


#: The paper's evaluation format: 1 sign + 3 integer + 12 fractional bits.
DEFAULT_FORMAT = FixedPointFormat(int_bits=3, frac_bits=12)
