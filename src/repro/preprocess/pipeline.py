"""End-to-end server-side pre-processing (paper Fig. 2, off-line step 1).

Combines the two techniques:

1. **Data projection** (Alg. 1): learn the dictionary, release ``W``
   (equivalently ``U``), and *rebuild* the model with an ``r``-
   dimensional input layer trained on the embeddings.
2. **Network pruning** (Sec. 3.2.2): magnitude-prune the condensed model
   and retrain.

The combined MAC fold is what divides the Table 4 gate counts into the
Table 5 ones.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from ..errors import PreprocessError
from ..nn.layers import Dense, Layer, ReLU, Sigmoid, Tanh
from ..nn.model import Sequential
from ..nn.train import TrainConfig, Trainer
from .projection import ProjectionConfig, ProjectionResult, build_projection
from .pruning import PruneReport, prune_model

__all__ = ["PreprocessReport", "preprocess_model", "condense_architecture"]


@dataclasses.dataclass
class PreprocessReport:
    """Everything the benchmarks need about a pre-processing run.

    Attributes:
        projection: Algorithm 1 output (``W`` is the public release).
        prune: pruning report of the condensed model (None if skipped).
        condensed: the retrained low-input-dimension (and sparse) model.
        macs_dense: MACs of the original model.
        macs_condensed: MACs after projection + pruning.
        accuracy_original / accuracy_condensed: test accuracies.
    """

    projection: Optional[ProjectionResult]
    prune: Optional[PruneReport]
    condensed: Sequential
    macs_dense: int
    macs_condensed: int
    accuracy_original: float
    accuracy_condensed: float

    @property
    def fold(self) -> float:
        """Overall MAC compaction (paper Table 5 "Data and Network
        Compaction")."""
        return self.macs_dense / max(self.macs_condensed, 1)

    @property
    def accuracy_drop(self) -> float:
        """Accuracy lost by pre-processing (paper claims ~none)."""
        return self.accuracy_original - self.accuracy_condensed


def condense_architecture(
    model: Sequential, new_input_dim: int, seed: int = 0
) -> Sequential:
    """Clone a dense-stack architecture with a new input width.

    Only fully-connected stacks are condensable this way (the paper's
    projection benchmarks B2-B4 are all FC networks).
    """
    layers: List[Layer] = []
    for layer in model.layers:
        if isinstance(layer, Dense):
            layers.append(Dense(layer.units, use_bias=layer.use_bias))
        elif isinstance(layer, (ReLU, Sigmoid, Tanh)):
            layers.append(type(layer)())
        else:
            raise PreprocessError(
                f"cannot condense architecture containing {layer.kind!r}"
            )
    return Sequential(
        layers, input_shape=(new_input_dim,), seed=seed,
        name=f"{model.name}_condensed",
    )


def preprocess_model(
    model: Sequential,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    projection_config: Optional[ProjectionConfig] = None,
    prune_sparsity: float = 0.5,
    retrain_config: Optional[TrainConfig] = None,
    seed: int = 0,
) -> PreprocessReport:
    """Run the full off-line pre-processing of Fig. 2.

    Args:
        model: trained dense model (the "primary DL architecture").
        x_train, y_train: server-side training data.
        x_val, y_val: validation split (drives Alg. 1's delta and the
            accuracy columns).
        projection_config: Alg. 1 thresholds; pass ``None`` defaults, or
            ``ProjectionConfig(gamma=0)`` -like settings to effectively
            skip projection.
        prune_sparsity: fraction of weights to prune in the condensed
            model (0 skips pruning).
        retrain_config: hyper-parameters for both retraining passes.
        seed: init seed for the condensed model.

    Returns:
        :class:`PreprocessReport` with the condensed model and folds.
    """
    retrain_config = retrain_config or TrainConfig(
        epochs=8, learning_rate=0.05
    )
    accuracy_original = float((model.predict(x_val) == y_val).mean())
    macs_dense = model.mac_count()

    projection = build_projection(
        x_train, config=projection_config or ProjectionConfig()
    )
    condensed = condense_architecture(model, projection.rank, seed=seed)
    embedded_train = projection.embed(x_train)
    embedded_val = projection.embed(x_val)
    Trainer(condensed, retrain_config).fit(
        embedded_train, y_train, embedded_val, y_val
    )

    prune_report: Optional[PruneReport] = None
    if prune_sparsity > 0:
        prune_report = prune_model(
            condensed,
            prune_sparsity,
            embedded_train,
            y_train,
            embedded_val,
            y_val,
            retrain_config=retrain_config,
        )
    accuracy_condensed = float(
        (condensed.predict(embedded_val) == y_val).mean()
    )
    return PreprocessReport(
        projection=projection,
        prune=prune_report,
        condensed=condensed,
        macs_dense=macs_dense,
        macs_condensed=condensed.nonzero_mac_count(),
        accuracy_original=accuracy_original,
        accuracy_condensed=accuracy_condensed,
    )
