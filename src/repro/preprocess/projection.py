"""Data projection pre-processing (paper Sec. 3.2.1, Algorithms 1 & 2).

The server streams its training data, greedily growing a dictionary
``D`` of (normalized) data columns whose span captures the data within a
projection-error threshold ``gamma``.  The DL model is retrained on the
low-dimensional embeddings, and the *projection matrix*
``W = D (D^T D)^-1 D^T`` is released publicly; Proposition 3.1 shows
``W = U U^T`` reveals only the column space of ``D``.

Dimensionality note (how compaction actually happens): ``W x`` is still
an ``m``-dimensional vector, so feeding it to the network unchanged
would not shrink the input layer.  The information in ``W x`` is exactly
the rank-``r`` coordinate vector ``U^T x`` (and ``U`` is publicly
derivable from ``W`` by eigendecomposition), so the condensed network
takes the ``r``-dimensional ``U^T x`` as input — that is where the
``n(1)``-fold reduction of Table 5 comes from.  Both operators are
exposed: :meth:`ProjectionResult.project` (Alg. 2, ``W X``) and
:meth:`ProjectionResult.embed` (``U^T X``, the condensed-model input).

Implementation notes kept faithful to the pseudocode:

* columns are appended as ``a / sqrt(||a||_2)`` with coefficient
  ``sqrt(||a||_2)`` (Alg. 1 lines 24-25, including the square root);
* line 28 of the pseudocode assigns the *m*-dimensional reprojection to
  the *l*-dimensional column ``C_i``; the dimensionally consistent
  reading — the coefficient vector ``(D^T D)^-1 D^T a_i`` — is
  implemented (reconstruction ``D C_i`` then equals the reprojection).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

import numpy as np

from ..errors import PreprocessError

__all__ = ["ProjectionConfig", "ProjectionResult", "build_projection", "projection_error"]


@dataclasses.dataclass
class ProjectionConfig:
    """Knobs of Algorithm 1.

    Attributes:
        gamma: projection-error threshold for admitting a new column.
        batch_size: how often the retraining hook fires (``n_batch``).
        patience: stop growing after this many non-improving validation
            checks (Alg. 1's early-stopping guard).
        max_rank: hard cap on dictionary size (defaults to ``m``).
    """

    gamma: float = 0.25
    batch_size: int = 64
    patience: Optional[int] = None
    max_rank: Optional[int] = None


@dataclasses.dataclass
class ProjectionResult:
    """Output of Algorithm 1.

    Attributes:
        dictionary: ``D`` (m x l), the admitted (normalized) columns.
        projection: ``W = D D^+`` (m x m), the public release.
        basis: ``U`` (m x r), orthonormal column space of ``D`` (public-
            equivalent to ``W``; used as the condensed-model input map).
        embeddings: ``C`` coefficients of the training stream (l x n).
        validation_errors: delta after each retraining batch.
        admitted: indices of training columns admitted into ``D``.
    """

    dictionary: np.ndarray
    projection: np.ndarray
    basis: np.ndarray
    embeddings: np.ndarray
    validation_errors: List[float]
    admitted: List[int]

    @property
    def rank(self) -> int:
        """Dimension of the retained subspace."""
        return self.basis.shape[1]

    def project(self, x: np.ndarray) -> np.ndarray:
        """Algorithm 2: ``Y = W X`` (client-side, full dimensionality)."""
        return x @ self.projection.T

    def embed(self, x: np.ndarray) -> np.ndarray:
        """Coordinates ``U^T x`` — the condensed network's input."""
        return x @ self.basis

    def reconstruction_error(self, x: np.ndarray) -> float:
        """Mean relative L2 error of ``W x`` vs ``x`` (quality metric)."""
        proj = self.project(x)
        num = np.linalg.norm(proj - x, axis=-1)
        den = np.linalg.norm(x, axis=-1) + 1e-12
        return float((num / den).mean())


def projection_error(dictionary: np.ndarray, column: np.ndarray) -> float:
    """Alg. 1 line 15: ``V_p(a) = ||D D^+ a - a|| / ||a||``."""
    norm = np.linalg.norm(column)
    if norm < 1e-12:
        return 0.0
    if dictionary.size == 0:
        return 1.0
    gram = dictionary.T @ dictionary
    coeff = np.linalg.solve(
        gram + 1e-10 * np.eye(gram.shape[0]), dictionary.T @ column
    )
    residual = dictionary @ coeff - column
    return float(np.linalg.norm(residual) / norm)


def build_projection(
    data: np.ndarray,
    config: Optional[ProjectionConfig] = None,
    update_dl: Optional[Callable[[np.ndarray, np.ndarray], None]] = None,
    update_validation_error: Optional[Callable[[], float]] = None,
    sample_indices: Optional[np.ndarray] = None,
) -> ProjectionResult:
    """Run Algorithm 1 over a training stream.

    Args:
        data: training samples, shape (n_samples, m) — transposed
            relative to the paper's column-major ``A`` for numpy
            friendliness.
        config: thresholds (see :class:`ProjectionConfig`).
        update_dl: hook called every ``batch_size`` samples with the
            embeddings and their indices so far (Alg. 1 line 33).
        update_validation_error: hook returning the current validation
            error delta (line 34).
        sample_indices: optional explicit stream order.

    Returns:
        :class:`ProjectionResult` with ``D``, ``W``, ``U`` and ``C``.
    """
    config = config or ProjectionConfig()
    if data.ndim != 2:
        raise PreprocessError("data must be 2-D (samples x features)")
    n_samples, m = data.shape
    max_rank = min(config.max_rank or m, m)
    order = (
        np.asarray(sample_indices)
        if sample_indices is not None
        else np.arange(n_samples)
    )

    columns: List[np.ndarray] = []
    coeff_rows: List[np.ndarray] = []
    admitted: List[int] = []
    validation_errors: List[float] = []
    delta_best = 1.0
    delta = 1.0
    itr = 0
    gram_inv: Optional[np.ndarray] = None

    def refresh_gram() -> None:
        nonlocal gram_inv
        if columns:
            dmat = np.stack(columns, axis=1)
            gram = dmat.T @ dmat
            gram_inv = np.linalg.inv(gram + 1e-10 * np.eye(gram.shape[0]))

    for step, idx in enumerate(order):
        sample = data[idx]
        norm = np.linalg.norm(sample)
        if not columns:
            vp = 1.0 if norm > 1e-12 else 0.0
        else:
            dmat = np.stack(columns, axis=1)
            coeff = gram_inv @ (dmat.T @ sample)
            vp = (
                float(np.linalg.norm(dmat @ coeff - sample) / norm)
                if norm > 1e-12
                else 0.0
            )
        if delta <= delta_best:
            delta_best = delta
            itr = 0
        else:
            itr += 1
        patience_ok = config.patience is None or itr < config.patience
        if (
            vp > config.gamma
            and patience_ok
            and len(columns) < max_rank
            and norm > 1e-12
        ):
            # Alg. 1 lines 24-25 (note the sqrt on the norm)
            scale = np.sqrt(norm)
            columns.append(sample / scale)
            refresh_gram()
            coeff_row = np.zeros(max_rank)
            coeff_row[len(columns) - 1] = scale
            coeff_rows.append(coeff_row)
            admitted.append(int(idx))
        else:
            coeff_row = np.zeros(max_rank)
            if columns:
                dmat = np.stack(columns, axis=1)
                coeff = gram_inv @ (dmat.T @ sample)
                coeff_row[: len(columns)] = coeff
            coeff_rows.append(coeff_row)
        if update_dl is not None and (step + 1) % config.batch_size == 0:
            current = np.stack(coeff_rows)[:, : max(len(columns), 1)]
            update_dl(current, order[: step + 1])
            if update_validation_error is not None:
                delta = update_validation_error()
                validation_errors.append(delta)

    if not columns:
        raise PreprocessError("no dictionary columns admitted; lower gamma")
    dictionary = np.stack(columns, axis=1)
    gram = dictionary.T @ dictionary
    middle = np.linalg.inv(gram + 1e-10 * np.eye(gram.shape[0]))
    projection = dictionary @ middle @ dictionary.T
    basis = np.linalg.qr(dictionary)[0]
    rank = dictionary.shape[1]
    embeddings = np.stack(coeff_rows)[:, :rank]
    return ProjectionResult(
        dictionary=dictionary,
        projection=projection,
        basis=basis,
        embeddings=embeddings,
        validation_errors=validation_errors,
        admitted=admitted,
    )
