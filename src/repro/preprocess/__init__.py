"""Data and DL-network pre-processing (paper Sec. 3.2)."""

from .pipeline import PreprocessReport, condense_architecture, preprocess_model
from .projection import (
    ProjectionConfig,
    ProjectionResult,
    build_projection,
    projection_error,
)
from .pruning import PruneReport, magnitude_threshold, prune_model, sparsity_map

__all__ = [
    "ProjectionConfig",
    "ProjectionResult",
    "build_projection",
    "projection_error",
    "PruneReport",
    "prune_model",
    "magnitude_threshold",
    "sparsity_map",
    "PreprocessReport",
    "preprocess_model",
    "condense_architecture",
]
