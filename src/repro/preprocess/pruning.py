"""DL network pruning pre-processing (paper Sec. 3.2.2).

Connections with weight magnitude below a threshold are removed and the
condensed network retrained to recover accuracy (the Han et al. recipe
the paper cites).  The resulting *sparsity map* is public — it changes
the netlist (which MACs exist) but reveals nothing about the surviving
weight values (paper's security argument (ii) in Sec. 3.7).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from ..errors import PreprocessError
from ..nn.layers import Conv2D, Dense
from ..nn.model import Sequential
from ..nn.train import TrainConfig, Trainer

__all__ = ["PruneReport", "magnitude_threshold", "prune_model", "sparsity_map"]


@dataclasses.dataclass
class PruneReport:
    """Outcome of one prune(+retrain) run.

    Attributes:
        per_layer_sparsity: fraction of weights removed per prunable layer.
        macs_before / macs_after: per-sample MAC counts (the GC cost
            driver, Table 2).
        accuracy_before / accuracy_after: validation accuracy around the
            prune+retrain cycle.
    """

    per_layer_sparsity: List[float]
    macs_before: int
    macs_after: int
    accuracy_before: float
    accuracy_after: float

    @property
    def fold(self) -> float:
        """MAC compaction factor (paper Table 5's "fold")."""
        return self.macs_before / max(self.macs_after, 1)


def magnitude_threshold(weights: np.ndarray, sparsity: float) -> float:
    """Weight-magnitude quantile achieving the requested sparsity."""
    if not 0.0 <= sparsity < 1.0:
        raise PreprocessError("sparsity must be in [0, 1)")
    if sparsity == 0.0:
        return 0.0
    return float(np.quantile(np.abs(weights), sparsity))


def sparsity_map(model: Sequential) -> Dict[int, np.ndarray]:
    """The public sparsity map: layer index -> boolean keep-mask."""
    result = {}
    for i, layer in enumerate(model.layers):
        mask = getattr(layer, "mask", None)
        if mask is not None:
            result[i] = mask.astype(bool)
    return result


def prune_model(
    model: Sequential,
    sparsity: float,
    x_train: Optional[np.ndarray] = None,
    y_train: Optional[np.ndarray] = None,
    x_val: Optional[np.ndarray] = None,
    y_val: Optional[np.ndarray] = None,
    retrain_config: Optional[TrainConfig] = None,
    per_layer: Optional[List[float]] = None,
) -> PruneReport:
    """Magnitude-prune (in place) and optionally retrain.

    Args:
        model: trained model; masks are installed on its Dense/Conv2D
            layers.
        sparsity: global fraction of weights to remove (per layer).
        x_train, y_train: retraining data (skip retraining when omitted).
        x_val, y_val: validation set for the before/after accuracies.
        retrain_config: retraining hyper-parameters.
        per_layer: per-prunable-layer sparsity overriding ``sparsity``
            (the paper prunes large layers harder).

    Returns:
        :class:`PruneReport`.
    """
    prunable = [
        layer for layer in model.layers if isinstance(layer, (Dense, Conv2D))
    ]
    if per_layer is not None and len(per_layer) != len(prunable):
        raise PreprocessError("per_layer length must match prunable layers")
    macs_before = model.nonzero_mac_count()
    accuracy_before = _accuracy(model, x_val, y_val)
    sparsities = per_layer or [sparsity] * len(prunable)
    achieved: List[float] = []
    for layer, target in zip(prunable, sparsities):
        threshold = magnitude_threshold(layer.weights, target)
        mask = (np.abs(layer.weights) > threshold).astype(float)
        # never prune a whole output unit away: keep the strongest weight
        _protect_outputs(layer, mask)
        layer.mask = mask
        layer.weights *= mask
        achieved.append(1.0 - float(mask.mean()))
    if x_train is not None and y_train is not None:
        config = retrain_config or TrainConfig(epochs=3, learning_rate=0.02)
        Trainer(model, config).fit(x_train, y_train, x_val, y_val)
    accuracy_after = _accuracy(model, x_val, y_val)
    return PruneReport(
        per_layer_sparsity=achieved,
        macs_before=macs_before,
        macs_after=model.nonzero_mac_count(),
        accuracy_before=accuracy_before,
        accuracy_after=accuracy_after,
    )


def _protect_outputs(layer, mask: np.ndarray) -> None:
    """Ensure every output unit keeps at least one incoming weight."""
    if isinstance(layer, Dense):
        dead = np.where(mask.sum(axis=0) == 0)[0]
        for unit in dead:
            best = int(np.abs(layer.weights[:, unit]).argmax())
            mask[best, unit] = 1.0
    else:  # Conv2D: (k, k, cin, cout)
        flat = mask.reshape(-1, mask.shape[-1])
        weights = layer.weights.reshape(-1, mask.shape[-1])
        dead = np.where(flat.sum(axis=0) == 0)[0]
        for unit in dead:
            best = int(np.abs(weights[:, unit]).argmax())
            flat[best, unit] = 1.0


def _accuracy(model, x_val, y_val) -> float:
    if x_val is None or y_val is None:
        return float("nan")
    return float((model.predict(x_val) == y_val).mean())
