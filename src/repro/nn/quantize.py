"""Fixed-point quantization with circuit-exact integer semantics.

This module is the bridge between the float substrate and the netlists:
:class:`QuantizedModel` performs inference using *exactly* the integer
operations the compiled circuits implement —

* products: ``sign(a*b) * ((|a| * |b|) >> frac)`` (round toward zero,
  matching :func:`repro.circuits.arith.multiply_fixed`);
* accumulation in a wide integer, then symmetric saturation back to the
  I/O width;
* activations through precomputed 2**width lookup tables whose entries
  come either from exact rounding (LUT circuits) or from the bit-exact
  CORDIC reference (CORDIC circuits);
* argmax with lowest-index tie-breaking (matching the CMP/MUX tree).

Because both sides share these semantics, the compiler tests can assert
*bit equality* between a garbled evaluation and this class.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..circuits.activations import VARIANT_CIRCUITS
from ..circuits.activations.cordic import (
    hyperbolic_plan,
    sigmoid_reference,
    tanh_reference,
)
from ..circuits.fixedpoint import DEFAULT_FORMAT, FixedPointFormat
from ..errors import QuantizationError
from .layers import Conv2D, Dense, Flatten, MaxPool2D, MeanPool2D
from .model import Sequential

__all__ = [
    "fixed_mul",
    "saturate",
    "activation_table",
    "ACTIVATION_VARIANTS",
    "QuantizedDense",
    "QuantizedConv2D",
    "QuantizedModel",
]


def fixed_mul(a: np.ndarray, b: np.ndarray, frac_bits: int) -> np.ndarray:
    """Circuit-exact fixed-point product (round toward zero)."""
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    magnitude = (np.abs(a) * np.abs(b)) >> frac_bits
    return np.where((a < 0) != (b < 0), -magnitude, magnitude)


def saturate(value: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Symmetric clamp to the representable range of ``fmt``."""
    high = (1 << (fmt.width - 1)) - 1
    return np.clip(np.asarray(value, dtype=np.int64), -high, high)


_TABLE_CACHE: Dict[Tuple, np.ndarray] = {}

#: Variants whose reference table is derived from the Table 3 circuit
#: itself (the approximation realizations have no closed-form reference).
_CIRCUIT_TABLE_VARIANTS = ("truncated", "piecewise")

#: Valid activation variant names, taken from the compiler's
#: variant-to-circuit map so new variants become visible everywhere
#: (EngineConfig validation, CLI choices) without a second edit.
ACTIVATION_VARIANTS = tuple(VARIANT_CIRCUITS)


def _circuit_variant_table(kind: str, fmt: FixedPointFormat, variant: str) -> np.ndarray:
    """Exhaustive truth table of a Table 3 circuit realization.

    The truncated and piecewise activations are circuit-level
    approximations with no closed-form reference, so the reference table
    is obtained by building the exact circuit the compiler would emit
    and evaluating it over every representable input pattern.  The sweep
    is vectorized — every wire carries a numpy vector of pattern chunks
    (the gate lambdas are pure bitwise ops, so they broadcast) — which
    keeps the paper-default 16-bit format tractable (sub-second instead
    of minutes of per-pattern Python simulation).
    """
    from ..circuits.activations import VARIANT_CIRCUITS, VARIANTS
    from ..circuits.builder import CircuitBuilder
    from ..circuits.netlist import CONST_ONE, CONST_ZERO

    builder = CircuitBuilder(name=f"{kind}_{variant}_table")
    x = builder.add_alice_inputs(fmt.width, name="x")
    out = VARIANTS[VARIANT_CIRCUITS[variant][kind]](builder, x, fmt)
    builder.mark_output_bus(out, name="y")
    circuit = builder.build()
    size = 1 << fmt.width
    out_width = len(circuit.outputs)
    table = np.zeros(size, dtype=np.int64)
    chunk = min(size, 8192)  # bound per-wire memory for wide formats
    for base in range(0, size, chunk):
        patterns = np.arange(base, min(base + chunk, size), dtype=np.int64)
        values: Dict[int, np.ndarray] = {
            CONST_ZERO: np.zeros(len(patterns), dtype=np.uint8),
            CONST_ONE: np.ones(len(patterns), dtype=np.uint8),
        }
        for i, wire in enumerate(circuit.alice_inputs):
            values[wire] = ((patterns >> i) & 1).astype(np.uint8)
        for gate in circuit.gates:
            if gate.b is None:
                values[gate.out] = gate.op.eval(values[gate.a])
            else:
                values[gate.out] = gate.op.eval(values[gate.a], values[gate.b])
        word = np.zeros(len(patterns), dtype=np.int64)
        for i, wire in enumerate(circuit.outputs):
            word |= values[wire].astype(np.int64) << i
        table[patterns] = np.where(
            (word >> (out_width - 1)) & 1, word - (1 << out_width), word
        )
    return table


def activation_table(
    kind: str, fmt: FixedPointFormat, variant: str = "exact"
) -> np.ndarray:
    """LUT over every representable input for a non-linearity.

    Args:
        kind: "tanh" or "sigmoid".
        fmt: I/O fixed-point format.
        variant: "exact" (rounded float — matches the LUT circuits),
            "cordic" (bit-exact CORDIC reference — matches the CORDIC
            circuits the paper uses in Sec. 4.5), or "truncated" /
            "piecewise" (bit-exact tables derived by simulating the
            Table 3 approximation circuits over the full input domain).

    Returns:
        int64 array of size ``2**width`` indexed by the unsigned bit
        pattern of the input.
    """
    key = (kind, fmt.int_bits, fmt.frac_bits, variant)
    cached = _TABLE_CACHE.get(key)
    if cached is not None:
        return cached
    size = 1 << fmt.width
    table = np.zeros(size, dtype=np.int64)
    if variant == "cordic":
        plan = hyperbolic_plan(
            frac_bits=fmt.frac_bits, expansion=3 if kind == "tanh" else 5
        )
        reference = tanh_reference if kind == "tanh" else sigmoid_reference
        for pattern in range(size):
            signed = fmt.from_unsigned(pattern)
            value = reference(fmt.decode(signed), fmt, plan)
            table[pattern] = fmt.encode(value)
    elif variant == "exact":
        fn: Callable[[float], float] = (
            math.tanh if kind == "tanh" else lambda v: 1 / (1 + math.exp(-v))
        )
        for pattern in range(size):
            signed = fmt.from_unsigned(pattern)
            table[pattern] = fmt.encode(fn(fmt.decode(signed)))
    elif variant in _CIRCUIT_TABLE_VARIANTS:
        table = _circuit_variant_table(kind, fmt, variant)
    else:
        raise QuantizationError(f"unknown activation variant {variant!r}")
    _TABLE_CACHE[key] = table
    return table


def _apply_activation(
    values: np.ndarray, kind: str, fmt: FixedPointFormat, variant: str
) -> np.ndarray:
    if kind == "relu":
        return np.maximum(values, 0)
    table = activation_table(kind, fmt, variant)
    patterns = np.asarray(values, dtype=np.int64) & ((1 << fmt.width) - 1)
    return table[patterns]


class QuantizedDense:
    """Integer twin of :class:`repro.nn.layers.Dense`."""

    kind = "dense"

    def __init__(
        self,
        weights: np.ndarray,
        bias: Optional[np.ndarray],
        fmt: FixedPointFormat,
        mask: Optional[np.ndarray] = None,
    ) -> None:
        self.fmt = fmt
        masked = weights * mask if mask is not None else weights
        self.weights = fmt.encode_array(masked)
        self.bias = fmt.encode_array(bias) if bias is not None else None
        self.mask = mask

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Wide-accumulator MAC then saturation (circuit semantics)."""
        frac = self.fmt.frac_bits
        # (batch, in, 1) * (in, out) products, summed over in
        products = fixed_mul(x[:, :, None], self.weights[None, :, :], frac)
        acc = products.sum(axis=1)
        if self.bias is not None:
            acc = acc + self.bias[None, :]
        return saturate(acc, self.fmt)


class QuantizedConv2D:
    """Integer twin of :class:`repro.nn.layers.Conv2D`."""

    kind = "conv2d"

    def __init__(
        self,
        layer: Conv2D,
        fmt: FixedPointFormat,
    ) -> None:
        self.fmt = fmt
        weights = layer.weights
        if layer.mask is not None:
            weights = weights * layer.mask
        self.weights = fmt.encode_array(weights)  # (k, k, cin, cout)
        self.bias = (
            fmt.encode_array(layer.bias) if layer.bias is not None else None
        )
        self.kernel_size = layer.kernel_size
        self.stride = layer.stride

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, h, w, cin = x.shape
        k, s = self.kernel_size, self.stride
        out_h = (h - k) // s + 1
        out_w = (w - k) // s + 1
        cols = np.empty((batch, out_h, out_w, k, k, cin), dtype=np.int64)
        for i in range(k):
            for j in range(k):
                cols[:, :, :, i, j, :] = x[
                    :, i : i + s * out_h : s, j : j + s * out_w : s, :
                ]
        cols2d = cols.reshape(batch * out_h * out_w, k * k * cin)
        w2d = self.weights.reshape(k * k * cin, -1)
        products = fixed_mul(
            cols2d[:, :, None], w2d[None, :, :], self.fmt.frac_bits
        )
        acc = products.sum(axis=1)
        if self.bias is not None:
            acc = acc + self.bias[None, :]
        out = saturate(acc, self.fmt)
        return out.reshape(batch, out_h, out_w, -1)


class QuantizedModel:
    """Integer inference engine matching the compiled circuits bit-for-bit.

    Args:
        model: trained float model.
        fmt: fixed-point format (paper default 1.3.12).
        activation_variant: "cordic" (paper Sec. 4.5 configuration),
            "exact" (LUT circuits), "truncated" or "piecewise" (the
            Table 3 approximation circuits, referenced bit-exactly via
            simulated truth tables).
    """

    def __init__(
        self,
        model: Sequential,
        fmt: FixedPointFormat = DEFAULT_FORMAT,
        activation_variant: str = "cordic",
    ) -> None:
        if activation_variant not in ACTIVATION_VARIANTS:
            raise QuantizationError(
                f"unknown activation variant {activation_variant!r}; "
                f"choose from {', '.join(ACTIVATION_VARIANTS)}"
            )
        self.fmt = fmt
        self.activation_variant = activation_variant
        self.input_shape = model.input_shape
        self.steps: List[Tuple[str, object]] = []
        for layer in model.layers:
            if isinstance(layer, Dense):
                self.steps.append(
                    (
                        "dense",
                        QuantizedDense(layer.weights, layer.bias, fmt, layer.mask),
                    )
                )
            elif isinstance(layer, Conv2D):
                self.steps.append(("conv2d", QuantizedConv2D(layer, fmt)))
            elif isinstance(layer, Flatten):
                self.steps.append(("flatten", None))
            elif isinstance(layer, MaxPool2D):
                self.steps.append(("maxpool", layer))
            elif isinstance(layer, MeanPool2D):
                self.steps.append(("meanpool", layer))
            elif layer.kind in ("relu", "sigmoid", "tanh"):
                self.steps.append((layer.kind, None))
            else:
                raise QuantizationError(
                    f"cannot quantize layer kind {layer.kind!r}"
                )

    # -- integer pipeline -------------------------------------------------

    def forward_fixed(self, x_fixed: np.ndarray) -> np.ndarray:
        """Integer logits from integer inputs (circuit semantics)."""
        out = np.asarray(x_fixed, dtype=np.int64)
        for kind, op in self.steps:
            if kind in ("dense", "conv2d"):
                out = op.forward(out)
            elif kind == "flatten":
                out = out.reshape(out.shape[0], -1)
            elif kind == "maxpool":
                out = self._pool(out, op, maximum=True)
            elif kind == "meanpool":
                out = self._pool(out, op, maximum=False)
            else:
                out = _apply_activation(
                    out, kind, self.fmt, self.activation_variant
                )
        return out

    def _pool(self, x: np.ndarray, layer, maximum: bool) -> np.ndarray:
        k = layer.pool_size
        s = layer.stride
        batch, h, w, c = x.shape
        out_h = (h - k) // s + 1
        out_w = (w - k) // s + 1
        win = np.empty((batch, out_h, out_w, k * k, c), dtype=np.int64)
        idx = 0
        for i in range(k):
            for j in range(k):
                win[:, :, :, idx, :] = x[
                    :, i : i + s * out_h : s, j : j + s * out_w : s, :
                ]
                idx += 1
        if maximum:
            return win.max(axis=3)
        total = saturate(win.sum(axis=3), self.fmt)
        inverse = self.fmt.encode(1.0 / (k * k))
        return fixed_mul(total, inverse, self.fmt.frac_bits)

    # -- float-facing API ----------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Float logits (decode of the integer pipeline)."""
        fixed = self.fmt.encode_array(x)
        return self.fmt.decode_array(self.forward_fixed(fixed))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class ids via lowest-index argmax (matches the CMP/MUX tree)."""
        logits = self.forward_fixed(self.fmt.encode_array(x))
        return logits.argmax(axis=-1)
