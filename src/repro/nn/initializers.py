"""Weight initializers for the numpy DL substrate."""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "he_uniform", "zeros"]


def glorot_uniform(shape, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform — default for tanh/sigmoid networks."""
    fan_in = shape[0] if len(shape) > 1 else shape[0]
    fan_out = shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_uniform(shape, rng: np.random.Generator) -> np.ndarray:
    """He uniform — default for ReLU networks."""
    fan_in = int(np.prod(shape[:-1]))
    limit = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape, rng: np.random.Generator = None) -> np.ndarray:
    """All-zero tensor (biases)."""
    return np.zeros(shape)
