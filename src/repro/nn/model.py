"""Sequential model container.

Mirrors the paper's modular structure (Sec. 3.6): layers stack freely, and
the same object is consumed by the trainer, the quantizer, the
pre-processing pipeline and the netlist compiler.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import TrainingError
from .layers import Dense, Layer
from .losses import softmax

__all__ = ["Sequential"]


class Sequential:
    """An ordered stack of layers.

    Args:
        layers: layer instances (not yet built).
        input_shape: per-sample input shape, e.g. ``(617,)`` or
            ``(28, 28, 1)``.
        seed: parameter-initialization seed.
    """

    def __init__(
        self,
        layers: Sequence[Layer],
        input_shape: Tuple[int, ...],
        seed: int = 0,
        name: str = "model",
    ) -> None:
        self.layers: List[Layer] = list(layers)
        self.input_shape = tuple(input_shape)
        self.name = name
        rng = np.random.default_rng(seed)
        shape = self.input_shape
        for layer in self.layers:
            shape = layer.build(shape, rng)
        self.output_shape = shape

    # -- inference ------------------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run all layers; returns raw logits (no softmax)."""
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions (argmax over logits — the paper's Softmax)."""
        return self.forward(x).argmax(axis=-1)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class probabilities via softmax (for calibration tests)."""
        return softmax(self.forward(x))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Back-propagate through the whole stack."""
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    # -- parameter access --------------------------------------------------------

    def parameters(self) -> List[np.ndarray]:
        """All trainable tensors, layer order."""
        params: List[np.ndarray] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def gradients(self) -> List[np.ndarray]:
        """All gradients, aligned with :meth:`parameters`."""
        grads: List[np.ndarray] = []
        for layer in self.layers:
            grads.extend(layer.gradients())
        return grads

    def parameter_count(self) -> int:
        """Total trainable scalars (the paper quotes 267K for LeNet-300-100)."""
        return int(sum(p.size for p in self.parameters()))

    def mac_count(self) -> int:
        """Per-sample multiply-accumulates across linear layers."""
        return int(
            sum(getattr(l, "mac_count", 0) for l in self.layers)
        )

    def nonzero_mac_count(self) -> int:
        """MACs that survive pruning masks."""
        total = 0
        for layer in self.layers:
            if hasattr(layer, "nonzero_macs"):
                total += layer.nonzero_macs
            else:
                total += getattr(layer, "mac_count", 0)
        return int(total)

    # -- persistence ----------------------------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Named parameter snapshot."""
        state = {}
        for i, layer in enumerate(self.layers):
            for j, param in enumerate(layer.parameters()):
                state[f"layer{i}_param{j}"] = param.copy()
            mask = getattr(layer, "mask", None)
            if mask is not None:
                state[f"layer{i}_mask"] = mask.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore a snapshot from :meth:`state_dict`."""
        for i, layer in enumerate(self.layers):
            for j, param in enumerate(layer.parameters()):
                key = f"layer{i}_param{j}"
                if key not in state:
                    raise TrainingError(f"missing parameter {key}")
                if param.shape != state[key].shape:
                    raise TrainingError(f"shape mismatch for {key}")
                param[...] = state[key]
            key = f"layer{i}_mask"
            if key in state:
                layer.mask = state[key].copy()

    def save(self, path: str) -> None:
        """Persist parameters to an ``.npz`` file."""
        np.savez(path, **self.state_dict())

    def load(self, path: str) -> None:
        """Load parameters saved by :meth:`save`."""
        with np.load(path) as data:
            self.load_state_dict({k: data[k] for k in data.files})

    def clone(self) -> "Sequential":
        """Deep copy (used by retraining pipelines to keep the original)."""
        return copy.deepcopy(self)

    # -- introspection -----------------------------------------------------------------

    def dense_layers(self) -> List[Dense]:
        """The fully-connected layers, in order."""
        return [l for l in self.layers if isinstance(l, Dense)]

    def architecture_string(self) -> str:
        """Compact description in the paper's style (e.g. 617-50FC-Tanh-...)."""
        parts = ["x".join(str(d) for d in self.input_shape)]
        for layer in self.layers:
            if layer.kind == "dense":
                parts.append(f"{layer.units}FC")
            elif layer.kind == "conv2d":
                parts.append(f"{layer.filters}C{layer.stride}")
            elif layer.kind == "relu":
                parts.append("ReLu")
            elif layer.kind == "sigmoid":
                parts.append("Sigmoid")
            elif layer.kind == "tanh":
                parts.append("Tanh")
            elif layer.kind == "maxpool":
                parts.append(f"M1P{layer.pool_size}")
            elif layer.kind == "meanpool":
                parts.append(f"M2P{layer.pool_size}")
        return "-".join(parts)
