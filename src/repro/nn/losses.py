"""Loss functions for training the DL substrate."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["softmax", "softmax_cross_entropy", "mean_squared_error"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Cross-entropy with integrated softmax.

    Args:
        logits: (batch, classes) raw scores.
        labels: (batch,) integer class ids.

    Returns:
        (mean loss, gradient w.r.t. logits).
    """
    batch = logits.shape[0]
    probs = softmax(logits)
    picked = probs[np.arange(batch), labels]
    loss = float(-np.log(np.clip(picked, 1e-12, None)).mean())
    grad = probs.copy()
    grad[np.arange(batch), labels] -= 1.0
    return loss, grad / batch


def mean_squared_error(
    outputs: np.ndarray, targets: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Plain MSE (used by autoencoder-style tests)."""
    diff = outputs - targets
    loss = float((diff ** 2).mean())
    return loss, 2.0 * diff / diff.size
