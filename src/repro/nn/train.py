"""Training loop with the validation-error hook of Algorithm 1.

The paper's pre-processing retrains the server's model while streaming
projected data (Alg. 1 lines 32-35: ``UpdateDL`` then
``UpdateValidationError``); :class:`Trainer` provides exactly those two
operations plus a conventional epoch loop with early stopping.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

import numpy as np

from ..errors import TrainingError
from .losses import softmax_cross_entropy
from .metrics import accuracy
from .model import Sequential
from .optimizers import SGD

__all__ = ["TrainConfig", "TrainHistory", "Trainer"]


@dataclasses.dataclass
class TrainConfig:
    """Hyper-parameters for :class:`Trainer`."""

    epochs: int = 10
    batch_size: int = 32
    learning_rate: float = 0.1
    momentum: float = 0.9
    patience: Optional[int] = None  # early stopping on validation error
    shuffle: bool = True
    seed: int = 0
    verbose: bool = False


@dataclasses.dataclass
class TrainHistory:
    """Per-epoch records."""

    loss: List[float] = dataclasses.field(default_factory=list)
    train_error: List[float] = dataclasses.field(default_factory=list)
    val_error: List[float] = dataclasses.field(default_factory=list)

    @property
    def best_val_error(self) -> float:
        """Lowest validation error seen (Alg. 1's ``delta_best``)."""
        return min(self.val_error) if self.val_error else 1.0


class Trainer:
    """Minibatch SGD trainer for :class:`Sequential` models."""

    def __init__(
        self,
        model: Sequential,
        config: Optional[TrainConfig] = None,
        optimizer=None,
        loss: Callable = softmax_cross_entropy,
    ) -> None:
        self.model = model
        self.config = config or TrainConfig()
        self.optimizer = optimizer or SGD(
            learning_rate=self.config.learning_rate,
            momentum=self.config.momentum,
        )
        self.loss = loss

    # -- Algorithm 1 hooks ---------------------------------------------------

    def update_dl(self, x_batch: np.ndarray, y_batch: np.ndarray) -> float:
        """One forward/backward/step on a batch (Alg. 1 ``UpdateDL``)."""
        logits = self.model.forward(x_batch, training=True)
        loss, grad = self.loss(logits, y_batch)
        self.model.backward(grad)
        self.optimizer.step(self.model.parameters(), self.model.gradients())
        return loss

    def update_validation_error(
        self, x_val: np.ndarray, y_val: np.ndarray
    ) -> float:
        """Validation error delta (Alg. 1 ``UpdateValidationError``)."""
        return 1.0 - accuracy(self.model.predict(x_val), y_val)

    # -- epoch loop --------------------------------------------------------------

    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
    ) -> TrainHistory:
        """Standard epoch training with optional early stopping.

        Returns:
            The epoch-level history; the model holds the final weights
            (best-weights restoration is the caller's choice via
            ``state_dict``).
        """
        cfg = self.config
        if len(x_train) != len(y_train):
            raise TrainingError("x/y length mismatch")
        rng = np.random.default_rng(cfg.seed)
        history = TrainHistory()
        best_val = np.inf
        stall = 0
        for epoch in range(cfg.epochs):
            order = (
                rng.permutation(len(x_train))
                if cfg.shuffle
                else np.arange(len(x_train))
            )
            epoch_loss = 0.0
            batches = 0
            for start in range(0, len(x_train), cfg.batch_size):
                idx = order[start : start + cfg.batch_size]
                epoch_loss += self.update_dl(x_train[idx], y_train[idx])
                batches += 1
            history.loss.append(epoch_loss / max(batches, 1))
            history.train_error.append(
                1.0 - accuracy(self.model.predict(x_train), y_train)
            )
            if x_val is not None:
                val_err = self.update_validation_error(x_val, y_val)
                history.val_error.append(val_err)
                if cfg.patience is not None:
                    if val_err < best_val - 1e-9:
                        best_val = val_err
                        stall = 0
                    else:
                        stall += 1
                        if stall > cfg.patience:
                            break
            if cfg.verbose:  # pragma: no cover - console helper
                val = history.val_error[-1] if history.val_error else float("nan")
                print(
                    f"epoch {epoch}: loss={history.loss[-1]:.4f} "
                    f"train_err={history.train_error[-1]:.4f} val_err={val:.4f}"
                )
        return history
