"""Gradient-descent optimizers."""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["SGD", "Adam"]


class SGD:
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, learning_rate: float = 0.1, momentum: float = 0.9) -> None:
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: List[np.ndarray] = []

    def step(self, params: List[np.ndarray], grads: List[np.ndarray]) -> None:
        """In-place update of every parameter tensor."""
        if not self._velocity:
            self._velocity = [np.zeros_like(p) for p in params]
        for param, grad, vel in zip(params, grads, self._velocity):
            vel *= self.momentum
            vel -= self.learning_rate * grad
            param += vel


class Adam:
    """Adam (Kingma & Ba) — used when SGD converges too slowly in tests."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: List[np.ndarray] = []
        self._v: List[np.ndarray] = []
        self._t = 0

    def step(self, params: List[np.ndarray], grads: List[np.ndarray]) -> None:
        """In-place Adam update."""
        if not self._m:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        self._t += 1
        correction1 = 1.0 - self.beta1 ** self._t
        correction2 = 1.0 - self.beta2 ** self._t
        for param, grad, m, v in zip(params, grads, self._m, self._v):
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad ** 2
            m_hat = m / correction1
            v_hat = v / correction2
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
