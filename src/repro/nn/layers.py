"""Neural-network layers (numpy forward/backward).

The substrate DeepSecure assumes: fully-connected and convolutional
networks with max/mean pooling and sigmoid/tanh/ReLU non-linearities
(paper Table 1).  Everything is batch-first float64 numpy; the trained
models are then quantized (:mod:`repro.nn.quantize`) and compiled to
netlists (:mod:`repro.compile`).

Shapes: Dense consumes ``(batch, features)``; Conv2D/pooling consume
``(batch, height, width, channels)`` and Flatten bridges the two.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..errors import TrainingError
from .initializers import glorot_uniform, he_uniform, zeros

__all__ = [
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "MeanPool2D",
    "Flatten",
    "ReLU",
    "Sigmoid",
    "Tanh",
]


class Layer:
    """Base layer: forward/backward plus parameter bookkeeping."""

    #: activation-kind tag used by the netlist compiler ("relu", ...)
    kind = "generic"

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> Tuple[int, ...]:
        """Allocate parameters; returns the output shape (no batch dim)."""
        return input_shape

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute outputs (caching whatever backward needs)."""
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Propagate the loss gradient; stores parameter grads."""
        raise NotImplementedError

    def parameters(self) -> List[np.ndarray]:
        """Trainable tensors (may be empty)."""
        return []

    def gradients(self) -> List[np.ndarray]:
        """Gradients aligned with :meth:`parameters`."""
        return []


class Dense(Layer):
    """Fully-connected layer ``y = x W + b`` (paper Table 1 "FC").

    Args:
        units: output dimensionality.
        use_bias: include an additive bias (the paper's formulas omit it;
            default off so gate counts match the published model).
    """

    kind = "dense"

    def __init__(self, units: int, use_bias: bool = False) -> None:
        if units < 1:
            raise TrainingError("units must be positive")
        self.units = units
        self.use_bias = use_bias
        self.weights: Optional[np.ndarray] = None
        self.bias: Optional[np.ndarray] = None
        self._x: Optional[np.ndarray] = None
        self.grad_w: Optional[np.ndarray] = None
        self.grad_b: Optional[np.ndarray] = None
        #: boolean mask applied to weights (network pruning, Sec. 3.2.2)
        self.mask: Optional[np.ndarray] = None

    def build(self, input_shape, rng):
        if len(input_shape) != 1:
            raise TrainingError(
                f"Dense expects flat inputs, got shape {input_shape}"
            )
        self.weights = glorot_uniform((input_shape[0], self.units), rng)
        self.bias = zeros((self.units,)) if self.use_bias else None
        return (self.units,)

    def forward(self, x, training=False):
        if self.mask is not None:
            self.weights *= self.mask
        self._x = x if training else None
        y = x @ self.weights
        if self.bias is not None:
            y = y + self.bias
        return y

    def backward(self, grad):
        self.grad_w = self._x.T @ grad
        if self.mask is not None:
            self.grad_w *= self.mask
        if self.bias is not None:
            self.grad_b = grad.sum(axis=0)
        return grad @ self.weights.T

    def parameters(self):
        params = [self.weights]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def gradients(self):
        grads = [self.grad_w]
        if self.bias is not None:
            grads.append(self.grad_b)
        return grads

    @property
    def mac_count(self) -> int:
        """Multiply-accumulate operations per sample (dense)."""
        return int(self.weights.shape[0] * self.weights.shape[1])

    @property
    def nonzero_macs(self) -> int:
        """MACs that survive pruning (sparsity-aware garbling cost)."""
        if self.mask is None:
            return self.mac_count
        return int(self.mask.sum())


class Conv2D(Layer):
    """2D convolution (valid padding) — paper Table 1 "C".

    Args:
        filters: number of output channels (the paper's "map-count").
        kernel_size: square kernel side ``k``.
        stride: spatial stride.
        use_bias: additive per-channel bias.
    """

    kind = "conv2d"

    def __init__(
        self,
        filters: int,
        kernel_size: int,
        stride: int = 1,
        use_bias: bool = False,
    ) -> None:
        self.filters = filters
        self.kernel_size = kernel_size
        self.stride = stride
        self.use_bias = use_bias
        self.weights: Optional[np.ndarray] = None  # (k, k, cin, cout)
        self.bias: Optional[np.ndarray] = None
        self.grad_w = None
        self.grad_b = None
        self._cols = None
        self._x_shape = None
        self.mask: Optional[np.ndarray] = None

    def build(self, input_shape, rng):
        if len(input_shape) != 3:
            raise TrainingError("Conv2D expects (H, W, C) inputs")
        h, w, cin = input_shape
        k, s = self.kernel_size, self.stride
        out_h = (h - k) // s + 1
        out_w = (w - k) // s + 1
        if out_h < 1 or out_w < 1:
            raise TrainingError("kernel larger than input")
        self.weights = he_uniform((k, k, cin, self.filters), rng)
        self.bias = zeros((self.filters,)) if self.use_bias else None
        self._out_spatial = (out_h, out_w)
        return (out_h, out_w, self.filters)

    def _im2col(self, x: np.ndarray) -> np.ndarray:
        batch, h, w, cin = x.shape
        k, s = self.kernel_size, self.stride
        out_h, out_w = self._out_spatial
        cols = np.empty((batch, out_h, out_w, k, k, cin), dtype=x.dtype)
        for i in range(k):
            for j in range(k):
                cols[:, :, :, i, j, :] = x[
                    :, i : i + s * out_h : s, j : j + s * out_w : s, :
                ]
        return cols.reshape(batch * out_h * out_w, k * k * cin)

    def forward(self, x, training=False):
        if self.mask is not None:
            self.weights *= self.mask
        batch = x.shape[0]
        out_h, out_w = self._out_spatial
        cols = self._im2col(x)
        w2d = self.weights.reshape(-1, self.filters)
        y = cols @ w2d
        if self.bias is not None:
            y = y + self.bias
        if training:
            self._cols = cols
            self._x_shape = x.shape
        return y.reshape(batch, out_h, out_w, self.filters)

    def backward(self, grad):
        batch, out_h, out_w, _ = grad.shape
        grad2d = grad.reshape(-1, self.filters)
        self.grad_w = (self._cols.T @ grad2d).reshape(self.weights.shape)
        if self.mask is not None:
            self.grad_w *= self.mask
        if self.bias is not None:
            self.grad_b = grad2d.sum(axis=0)
        w2d = self.weights.reshape(-1, self.filters)
        dcols = grad2d @ w2d.T
        dcols = dcols.reshape(
            batch, out_h, out_w, self.kernel_size, self.kernel_size, -1
        )
        dx = np.zeros(self._x_shape)
        s = self.stride
        for i in range(self.kernel_size):
            for j in range(self.kernel_size):
                dx[:, i : i + s * out_h : s, j : j + s * out_w : s, :] += dcols[
                    :, :, :, i, j, :
                ]
        return dx

    def parameters(self):
        params = [self.weights]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def gradients(self):
        grads = [self.grad_w]
        if self.bias is not None:
            grads.append(self.grad_b)
        return grads

    @property
    def mac_count(self) -> int:
        """MACs per sample: kernel volume times output positions."""
        out_h, out_w = self._out_spatial
        k = self.kernel_size
        cin = self.weights.shape[2]
        return int(k * k * cin * out_h * out_w * self.filters)

    @property
    def nonzero_macs(self) -> int:
        """MACs after pruning (each weight reused per output position)."""
        if self.mask is None:
            return self.mac_count
        out_h, out_w = self._out_spatial
        return int(self.mask.sum() * out_h * out_w)


class _Pool2D(Layer):
    """Shared machinery for max/mean pooling."""

    def __init__(self, pool_size: int, stride: Optional[int] = None) -> None:
        self.pool_size = pool_size
        self.stride = stride if stride is not None else pool_size

    def build(self, input_shape, rng):
        h, w, c = input_shape
        k, s = self.pool_size, self.stride
        self._out_spatial = ((h - k) // s + 1, (w - k) // s + 1)
        return (*self._out_spatial, c)

    def _windows(self, x: np.ndarray) -> np.ndarray:
        out_h, out_w = self._out_spatial
        k, s = self.pool_size, self.stride
        batch, _, _, c = x.shape
        win = np.empty((batch, out_h, out_w, k * k, c), dtype=x.dtype)
        idx = 0
        for i in range(k):
            for j in range(k):
                win[:, :, :, idx, :] = x[
                    :, i : i + s * out_h : s, j : j + s * out_w : s, :
                ]
                idx += 1
        return win


class MaxPool2D(_Pool2D):
    """Max pooling over overlapping or disjoint windows ("M1P")."""

    kind = "maxpool"

    def forward(self, x, training=False):
        win = self._windows(x)
        if training:
            self._win_argmax = win.argmax(axis=3)
            self._x_shape = x.shape
        return win.max(axis=3)

    def backward(self, grad):
        batch, out_h, out_w, c = grad.shape
        k, s = self.pool_size, self.stride
        dx = np.zeros(self._x_shape)
        for i in range(k):
            for j in range(k):
                idx = i * k + j
                mask = self._win_argmax == idx
                dx[:, i : i + s * out_h : s, j : j + s * out_w : s, :] += (
                    grad * mask
                )
        return dx

    def comparisons_per_sample(self, channels: int) -> int:
        """CMP+MUX stages garbled per sample (pool area minus one each)."""
        out_h, out_w = self._out_spatial
        return (self.pool_size ** 2 - 1) * out_h * out_w * channels


class MeanPool2D(_Pool2D):
    """Mean pooling over non-overlapping windows ("M2P")."""

    kind = "meanpool"

    def forward(self, x, training=False):
        win = self._windows(x)
        if training:
            self._x_shape = x.shape
        return win.mean(axis=3)

    def backward(self, grad):
        k, s = self.pool_size, self.stride
        batch, out_h, out_w, c = grad.shape
        dx = np.zeros(self._x_shape)
        share = grad / (k * k)
        for i in range(k):
            for j in range(k):
                dx[:, i : i + s * out_h : s, j : j + s * out_w : s, :] += share
        return dx


class Flatten(Layer):
    """Reshape (H, W, C) feature maps to vectors."""

    kind = "flatten"

    def build(self, input_shape, rng):
        self._input_shape = input_shape
        return (int(np.prod(input_shape)),)

    def forward(self, x, training=False):
        self._batch_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad):
        return grad.reshape(self._batch_shape)


class ReLU(Layer):
    """Rectified linear unit (a single mux in GC, Sec. 2.1)."""

    kind = "relu"

    def forward(self, x, training=False):
        if training:
            self._mask = x > 0
        return np.maximum(x, 0.0)

    def backward(self, grad):
        return grad * self._mask


class Sigmoid(Layer):
    """Logistic sigmoid (CORDIC/LUT/PLAN circuits in GC)."""

    kind = "sigmoid"

    def forward(self, x, training=False):
        y = 1.0 / (1.0 + np.exp(-np.clip(x, -60, 60)))
        if training:
            self._y = y
        return y

    def backward(self, grad):
        return grad * self._y * (1.0 - self._y)


class Tanh(Layer):
    """Tangent hyperbolic (CORDIC/LUT/PL circuits in GC)."""

    kind = "tanh"

    def forward(self, x, training=False):
        y = np.tanh(x)
        if training:
            self._y = y
        return y

    def backward(self, grad):
        return grad * (1.0 - self._y ** 2)
