"""Deep-learning substrate: numpy layers, training, quantization."""

from .initializers import glorot_uniform, he_uniform, zeros
from .layers import (
    Conv2D,
    Dense,
    Flatten,
    Layer,
    MaxPool2D,
    MeanPool2D,
    ReLU,
    Sigmoid,
    Tanh,
)
from .losses import mean_squared_error, softmax, softmax_cross_entropy
from .metrics import accuracy, agreement, confusion_matrix, error_rate
from .model import Sequential
from .optimizers import SGD, Adam
from .quantize import (
    QuantizedConv2D,
    QuantizedDense,
    QuantizedModel,
    activation_table,
    fixed_mul,
    saturate,
)
from .train import TrainConfig, TrainHistory, Trainer

__all__ = [
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "MeanPool2D",
    "Flatten",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Sequential",
    "Trainer",
    "TrainConfig",
    "TrainHistory",
    "SGD",
    "Adam",
    "softmax",
    "softmax_cross_entropy",
    "mean_squared_error",
    "accuracy",
    "error_rate",
    "agreement",
    "confusion_matrix",
    "QuantizedModel",
    "QuantizedDense",
    "QuantizedConv2D",
    "fixed_mul",
    "saturate",
    "activation_table",
    "glorot_uniform",
    "he_uniform",
    "zeros",
]
