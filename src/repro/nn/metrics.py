"""Evaluation metrics."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "error_rate", "confusion_matrix", "agreement"]


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct predictions."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError("prediction/label shape mismatch")
    if predictions.size == 0:
        return 0.0
    return float((predictions == labels).mean())


def error_rate(predictions: np.ndarray, labels: np.ndarray) -> float:
    """1 - accuracy (the paper's inference-error metric)."""
    return 1.0 - accuracy(predictions, labels)


def agreement(a: np.ndarray, b: np.ndarray) -> float:
    """Fraction of samples where two predictors agree.

    Used to quantify "no drop in accuracy" claims: quantized / projected
    / pruned models are compared against the float model's outputs.
    """
    return accuracy(np.asarray(a), np.asarray(b))


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, n_classes: int
) -> np.ndarray:
    """(true, predicted) count matrix."""
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    for true, pred in zip(np.asarray(labels), np.asarray(predictions)):
        matrix[int(true), int(pred)] += 1
    return matrix
