"""Model-to-netlist compiler.

Lowers a :class:`repro.nn.quantize.QuantizedModel` to a single Boolean
circuit implementing the full private inference:

* the client's features are Alice's input bits (she garbles);
* the server's weights are Bob's input bits (transferred via OT);
* each linear layer becomes multiply-accumulate trees with wide
  accumulators, honoring pruning masks (masked weights produce *no*
  gates — the paper's sparsity payoff, Sec. 3.2.2);
* accumulators saturate back to the I/O width exactly like
  :func:`repro.nn.quantize.saturate`;
* non-linearities instantiate the selected Table 3 variant;
* the output layer is the CMP/MUX argmax (the paper's Softmax), emitting
  the inference label index.

The compiled circuit is *bit-exact* with ``QuantizedModel.forward_fixed``
(integration-tested), so the GC protocol provably computes the same
label the server would compute in the clear.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.activations import VARIANT_CIRCUITS, VARIANTS
from ..circuits.activations.piecewise import constant_multiply_positive
from ..circuits.arith import (
    multiply_fixed_full,
    relu as relu_circuit,
    ripple_add,
    saturate_to_width,
    sign_extend,
)
from ..circuits.arith import absolute, conditional_negate
from ..circuits.builder import Bus, CircuitBuilder
from ..circuits.fixedpoint import FixedPointFormat
from ..circuits.logic import argmax_tree, max_tree
from ..circuits.netlist import Circuit
from ..errors import CompileError
from ..nn.quantize import QuantizedConv2D, QuantizedDense, QuantizedModel

__all__ = ["CompileOptions", "CompiledModel", "compile_model"]


@dataclasses.dataclass(frozen=True)
class CompileOptions:
    """Compiler knobs.

    Attributes:
        activation: which Table 3 realization to instantiate for
            tanh/sigmoid ("cordic", "exact" -> full LUTs, "truncated",
            "piecewise").
        output: "argmax" (label index, the DeepSecure deliverable) or
            "logits" (raw scores, for bit-exactness tests).
        honor_sparsity: skip gates for masked-out weights.
    """

    activation: str = "cordic"
    output: str = "argmax"
    honor_sparsity: bool = True


@dataclasses.dataclass
class CompiledModel:
    """A compiled inference circuit plus its interface metadata.

    Attributes:
        circuit: the netlist (Alice = features, Bob = weights).
        fmt: I/O fixed-point format.
        n_features: client inputs (words).
        weight_values: Bob's weight words in input-wire order (the
            server feeds these to the protocol).
        output_kind: "argmax" or "logits".
        n_classes: logit count.
    """

    circuit: Circuit
    fmt: FixedPointFormat
    n_features: int
    weight_values: List[int]
    output_kind: str
    n_classes: int
    layer_report: List[Tuple[str, int, int]] = dataclasses.field(
        default_factory=list
    )

    def render_layer_report(self) -> str:
        """Per-layer XOR / non-XOR breakdown as a text table."""
        lines = [f"{'layer':<16}{'XOR':>10}{'non-XOR':>10}"]
        for name, xor, non_xor in self.layer_report:
            lines.append(f"{name:<16}{xor:>10}{non_xor:>10}")
        return "\n".join(lines)

    def client_bits(self, features: np.ndarray) -> List[int]:
        """Encode one sample into Alice's input bit vector."""
        flat = np.asarray(features, dtype=np.float64).reshape(-1)
        if flat.size != self.n_features:
            raise CompileError(
                f"expected {self.n_features} features, got {flat.size}"
            )
        bits: List[int] = []
        for value in flat:
            pattern = self.fmt.to_unsigned(self.fmt.encode(float(value)))
            bits.extend((pattern >> i) & 1 for i in range(self.fmt.width))
        return bits

    def server_bits(self) -> List[int]:
        """Encode the model weights into Bob's input bit vector."""
        bits: List[int] = []
        for word in self.weight_values:
            pattern = self.fmt.to_unsigned(int(word))
            bits.extend((pattern >> i) & 1 for i in range(self.fmt.width))
        return bits

    def decode_output(self, output_bits: Sequence[int]) -> int:
        """Decode the protocol's output bits into a class label."""
        if self.output_kind != "argmax":
            raise CompileError("decode_output requires argmax output")
        value = 0
        for i, bit in enumerate(output_bits):
            value |= (bit & 1) << i
        return value


class _Compiler:
    def __init__(self, qmodel: QuantizedModel, options: CompileOptions) -> None:
        self.qmodel = qmodel
        self.options = options
        self.fmt = qmodel.fmt
        self.builder = CircuitBuilder(name="deepsecure_inference")
        self.weight_values: List[int] = []
        self._weight_wires: List[Bus] = []

    # -- input staging ------------------------------------------------------

    def _collect_weights(self) -> None:
        """Pre-scan layers so all Bob inputs are declared up front."""
        for kind, op in self.qmodel.steps:
            if kind == "dense":
                mask = self._dense_mask(op)
                for j in range(op.weights.shape[1]):
                    for i in range(op.weights.shape[0]):
                        if mask is None or mask[i, j]:
                            self.weight_values.append(int(op.weights[i, j]))
                if op.bias is not None:
                    self.weight_values.extend(int(b) for b in op.bias)
            elif kind == "conv2d":
                weights = op.weights
                for index in np.ndindex(weights.shape):
                    if weights[index] or not self.options.honor_sparsity:
                        self.weight_values.append(int(weights[index]))
                if op.bias is not None:
                    self.weight_values.extend(int(b) for b in op.bias)

    def _dense_mask(self, op: QuantizedDense) -> Optional[np.ndarray]:
        if not self.options.honor_sparsity:
            return None
        if op.mask is not None:
            return op.mask.astype(bool)
        # treat exactly-zero quantized weights as pruned only when a mask
        # exists; otherwise keep them (gate counts must match the dense
        # architecture)
        return None

    # -- compilation --------------------------------------------------------------

    def compile(self) -> CompiledModel:
        qmodel = self.qmodel
        fmt = self.fmt
        n_features = int(np.prod(qmodel.input_shape))
        feature_bits = self.builder.add_alice_inputs(
            n_features * fmt.width, name="features"
        )
        self._collect_weights()
        weight_bits = self.builder.add_bob_inputs(
            len(self.weight_values) * fmt.width, name="weights"
        )
        self._weight_wires = [
            weight_bits[k * fmt.width : (k + 1) * fmt.width]
            for k in range(len(self.weight_values))
        ]
        self._next_weight = 0

        # values flow as a list of word buses; spatial shapes tracked
        values: List[Bus] = [
            feature_bits[k * fmt.width : (k + 1) * fmt.width]
            for k in range(n_features)
        ]
        shape: Tuple[int, ...] = tuple(qmodel.input_shape)

        layer_report: List[Tuple[str, int, int]] = []

        def checkpoint(label: str, prev: Tuple[int, int]) -> Tuple[int, int]:
            gates = self.builder.gate_count
            non_xor = self.builder.non_xor_count()
            layer_report.append(
                (label, (gates - prev[0]) - (non_xor - prev[1]), non_xor - prev[1])
            )
            return gates, non_xor

        marker = (0, 0)
        for index, (kind, op) in enumerate(qmodel.steps):
            if kind == "dense":
                values = self._compile_dense(op, values)
                shape = (len(values),)
            elif kind == "conv2d":
                values, shape = self._compile_conv(op, values, shape)
            elif kind == "flatten":
                shape = (len(values),)
            elif kind == "maxpool":
                values, shape = self._compile_pool(op, values, shape, maximum=True)
            elif kind == "meanpool":
                values, shape = self._compile_pool(op, values, shape, maximum=False)
            elif kind in ("relu", "tanh", "sigmoid"):
                values = [self._activation(kind, bus) for bus in values]
            else:  # pragma: no cover - QuantizedModel restricts kinds
                raise CompileError(f"cannot compile step {kind!r}")
            marker = checkpoint(f"{index}:{kind}", marker)

        n_classes = len(values)
        if self.options.output == "argmax":
            index_bus, _ = argmax_tree(self.builder, values, signed=True)
            self.builder.mark_output_bus(index_bus, name="label")
            marker = checkpoint("output:argmax", marker)
        elif self.options.output == "logits":
            for i, bus in enumerate(values):
                self.builder.mark_output_bus(bus, name=f"logit{i}")
        else:
            raise CompileError(f"unknown output kind {self.options.output!r}")
        circuit = self.builder.build()
        return CompiledModel(
            circuit=circuit,
            fmt=fmt,
            n_features=n_features,
            weight_values=self.weight_values,
            output_kind=self.options.output,
            n_classes=n_classes,
            layer_report=layer_report,
        )

    def _take_weight(self) -> Bus:
        bus = self._weight_wires[self._next_weight]
        self._next_weight += 1
        return bus

    def _mac_tree(self, products: List[Bus], extra: Optional[Bus]) -> Bus:
        """Sum fixed products in a wide accumulator, then saturate.

        Products arrive at full precision (no wrap); the accumulator is
        wide enough for the worst-case sum and saturates to the I/O
        width at the end, mirroring ``QuantizedModel`` exactly.
        """
        fmt = self.fmt
        fan_in = len(products) + (1 if extra is not None else 0)
        product_width = max((len(p) for p in products), default=fmt.width)
        acc_width = product_width + max(1, math.ceil(math.log2(max(fan_in, 2))) + 1)
        terms = [sign_extend(self.builder, p, acc_width) for p in products]
        if extra is not None:
            terms.append(sign_extend(self.builder, extra, acc_width))
        if not terms:
            return [self.builder.zero] * fmt.width
        acc = terms[0]
        for term in terms[1:]:
            acc = ripple_add(self.builder, acc, term)
        return saturate_to_width(self.builder, acc, fmt.width)

    def _compile_dense(self, op: QuantizedDense, values: List[Bus]) -> List[Bus]:
        fmt = self.fmt
        mask = self._dense_mask_resolved(op)
        in_dim, out_dim = op.weights.shape
        if len(values) != in_dim:
            raise CompileError("dense input width mismatch")
        # consume weight wires in exactly the _collect_weights order:
        # all weights (output-major), then all biases
        per_output_products: List[List[Bus]] = []
        for j in range(out_dim):
            products: List[Bus] = []
            for i in range(in_dim):
                if mask is not None and not mask[i, j]:
                    continue
                weight_bus = self._take_weight()
                products.append(
                    multiply_fixed_full(
                        self.builder, values[i], weight_bus, fmt.frac_bits
                    )
                )
            per_output_products.append(products)
        bias_buses = (
            [self._take_weight() for _ in range(out_dim)]
            if op.bias is not None
            else [None] * out_dim
        )
        return [
            self._mac_tree(products, bias)
            for products, bias in zip(per_output_products, bias_buses)
        ]

    def _dense_mask_resolved(self, op: QuantizedDense) -> Optional[np.ndarray]:
        if self.options.honor_sparsity and op.mask is not None:
            return op.mask.astype(bool)
        return None

    def _compile_conv(
        self, op: QuantizedConv2D, values: List[Bus], shape: Tuple[int, ...]
    ) -> Tuple[List[Bus], Tuple[int, ...]]:
        fmt = self.fmt
        h, w, cin = shape
        k, s = op.kernel_size, op.stride
        out_h = (h - k) // s + 1
        out_w = (w - k) // s + 1
        cout = op.weights.shape[-1]

        def value_at(row: int, col: int, channel: int) -> Bus:
            return values[(row * w + col) * cin + channel]

        # weight wires, same order as _collect_weights (np.ndindex)
        weight_wire: Dict[Tuple[int, int, int, int], Bus] = {}
        for index in np.ndindex(op.weights.shape):
            if op.weights[index] or not self.options.honor_sparsity:
                weight_wire[index] = self._take_weight()
        bias_buses = (
            [self._take_weight() for _ in range(cout)]
            if op.bias is not None
            else None
        )

        outputs: List[Bus] = []
        for row in range(out_h):
            for col in range(out_w):
                for ch_out in range(cout):
                    products: List[Bus] = []
                    for di in range(k):
                        for dj in range(k):
                            for ch_in in range(cin):
                                key = (di, dj, ch_in, ch_out)
                                if key not in weight_wire:
                                    continue
                                x_bus = value_at(row * s + di, col * s + dj, ch_in)
                                products.append(
                                    multiply_fixed_full(
                                        self.builder,
                                        x_bus,
                                        weight_wire[key],
                                        fmt.frac_bits,
                                    )
                                )
                    bias = bias_buses[ch_out] if bias_buses else None
                    outputs.append(self._mac_tree(products, bias))
        return outputs, (out_h, out_w, cout)

    def _compile_pool(
        self,
        layer,
        values: List[Bus],
        shape: Tuple[int, ...],
        maximum: bool,
    ) -> Tuple[List[Bus], Tuple[int, ...]]:
        fmt = self.fmt
        h, w, c = shape
        k = layer.pool_size
        s = layer.stride
        out_h = (h - k) // s + 1
        out_w = (w - k) // s + 1

        def value_at(row: int, col: int, channel: int) -> Bus:
            return values[(row * w + col) * c + channel]

        outputs: List[Bus] = []
        for row in range(out_h):
            for col in range(out_w):
                for channel in range(c):
                    window = [
                        value_at(row * s + i, col * s + j, channel)
                        for i in range(k)
                        for j in range(k)
                    ]
                    if maximum:
                        outputs.append(max_tree(self.builder, window, signed=True))
                    else:
                        outputs.append(self._mean_window(window))
        return outputs, (out_h, out_w, c)

    def _mean_window(self, window: List[Bus]) -> Bus:
        """Mean pooling: saturated sum then fixed multiply by 1/area."""
        fmt = self.fmt
        acc_width = fmt.width + max(1, math.ceil(math.log2(len(window))) + 1)
        acc = sign_extend(self.builder, window[0], acc_width)
        for bus in window[1:]:
            acc = ripple_add(
                self.builder, acc, sign_extend(self.builder, bus, acc_width)
            )
        total = saturate_to_width(self.builder, acc, fmt.width)
        inverse = fmt.encode(1.0 / len(window))
        sign = total[-1]
        magnitude = absolute(self.builder, total)[:-1] + [self.builder.zero]
        scaled = constant_multiply_positive(
            self.builder, magnitude, inverse, fmt.frac_bits, fmt.width
        )
        return conditional_negate(self.builder, sign, scaled)

    def _activation(self, kind: str, bus: Bus) -> Bus:
        fmt = self.fmt
        if kind == "relu":
            return relu_circuit(self.builder, bus)
        choice = self.options.activation
        realizations = VARIANT_CIRCUITS.get(choice)
        if realizations is None:
            raise CompileError(f"unknown activation choice {choice!r}")
        return VARIANTS[realizations[kind]](self.builder, bus, fmt)


def compile_model(
    qmodel: QuantizedModel, options: Optional[CompileOptions] = None
) -> CompiledModel:
    """Compile a quantized model to a private-inference netlist."""
    return _Compiler(qmodel, options or CompileOptions()).compile()
