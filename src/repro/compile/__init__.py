"""Model-to-netlist compiler, analytic gate counts and GC cost model."""

from .compiler import CompiledModel, CompileOptions, compile_model
from .costmodel import CostBreakdown, GCCostModel
from .folded import FoldedDenseResult, folded_mac_cell, run_folded_dense
from .gatecount import (
    Architecture,
    Layer,
    activation,
    architecture_counts,
    conv,
    fc,
    measured_component_costs,
    pool,
    softmax,
)
from .paper_costs import (
    CRYPTONETS_BATCH,
    CRYPTONETS_COMM_BYTES,
    CRYPTONETS_FIG6_LATENCY_S,
    CRYPTONETS_LATENCY_S,
    PAPER_COEFFICIENTS,
    PAPER_COMPONENT_COSTS,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
    ComponentCosts,
    CostCoefficients,
)

__all__ = [
    "compile_model",
    "CompileOptions",
    "CompiledModel",
    "GCCostModel",
    "CostBreakdown",
    "folded_mac_cell",
    "run_folded_dense",
    "FoldedDenseResult",
    "Architecture",
    "Layer",
    "fc",
    "conv",
    "activation",
    "pool",
    "softmax",
    "architecture_counts",
    "measured_component_costs",
    "ComponentCosts",
    "CostCoefficients",
    "PAPER_COMPONENT_COSTS",
    "PAPER_COEFFICIENTS",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "CRYPTONETS_LATENCY_S",
    "CRYPTONETS_COMM_BYTES",
    "CRYPTONETS_BATCH",
    "CRYPTONETS_FIG6_LATENCY_S",
]
