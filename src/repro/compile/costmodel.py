"""The GC performance model of Table 2 / Sec. 4.3-4.4.

Turns gate counts into the three quantities the paper's evaluation
tables report per benchmark:

* **Comm. (MB)** — garbled tables only: ``non_xor * 2 * 128 bit``
  (Eq. 4; OT and label traffic are negligible against the tables);
* **Comp. (s)** — ``(N_xor * 62 + N_nonxor * 164) / f_cpu`` (Eq. 3);
* **Execution (s)** — end-to-end including transfer, dominated by the
  effective non-XOR throughput (Sec. 4.4: 2.56M gates/s).

The coefficients default to the paper's measured values so Tables 4-6
regenerate exactly; pass your own :class:`CostCoefficients` (e.g. from
the microbenchmark) to model other hosts.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..circuits.netlist import GateCounts
from .paper_costs import PAPER_COEFFICIENTS, CostCoefficients

__all__ = ["CostBreakdown", "GCCostModel"]


@dataclasses.dataclass(frozen=True)
class CostBreakdown:
    """One benchmark row of Table 4/5."""

    xor: int
    non_xor: int
    comm_bytes: float
    computation_s: float
    execution_s: float

    @property
    def comm_mb(self) -> float:
        """Communication in the paper's MB (10^6 bytes)."""
        return self.comm_bytes / 1e6


class GCCostModel:
    """Maps :class:`GateCounts` to time/traffic figures."""

    def __init__(
        self, coefficients: Optional[CostCoefficients] = None
    ) -> None:
        self.coefficients = coefficients or PAPER_COEFFICIENTS

    def communication_bytes(self, counts: GateCounts) -> float:
        """Eq. 4: two 128-bit rows per non-XOR gate."""
        return counts.non_xor * self.coefficients.bits_per_non_xor / 8.0

    def computation_seconds(self, counts: GateCounts) -> float:
        """Eq. 3: per-gate garbling/evaluation cycles over the clock."""
        coeff = self.coefficients
        cycles = counts.xor * coeff.xor_clks + counts.non_xor * coeff.non_xor_clks
        return cycles / coeff.cpu_hz

    def execution_seconds(self, counts: GateCounts) -> float:
        """End-to-end time (transfer-dominated, Sec. 4.4)."""
        return counts.non_xor / self.coefficients.effective_non_xor_per_s

    def breakdown(self, counts: GateCounts) -> CostBreakdown:
        """All three table columns for a gate inventory."""
        return CostBreakdown(
            xor=counts.xor,
            non_xor=counts.non_xor,
            comm_bytes=self.communication_bytes(counts),
            computation_s=self.computation_seconds(counts),
            execution_s=self.execution_seconds(counts),
        )

    def batch_delay_seconds(self, counts: GateCounts, n_samples: int) -> float:
        """Client-perceived delay for ``n_samples`` (linear — Fig. 6).

        GC has no batching effects: every sample is an independent
        protocol execution, so delay scales exactly linearly.
        """
        return self.execution_seconds(counts) * n_samples
