"""The paper's published numbers, kept in one place.

Table 3 component gate counts, Table 2/Sec. 4.3 cost-model coefficients,
Table 4/5 benchmark rows and the Table 6 / Fig. 6 CryptoNets figures.
Every benchmark compares our measured/derived values against these.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

__all__ = [
    "PAPER_TABLE3",
    "CostCoefficients",
    "PAPER_COEFFICIENTS",
    "ComponentCosts",
    "PAPER_COMPONENT_COSTS",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "CRYPTONETS_LATENCY_S",
    "CRYPTONETS_COMM_BYTES",
    "CRYPTONETS_BATCH",
    "CRYPTONETS_FIG6_LATENCY_S",
]

#: Table 3: component -> (XOR, non-XOR, error as a fraction; None = exact).
PAPER_TABLE3: Dict[str, Tuple[int, int, Optional[float]]] = {
    "TanhLUT": (692, 149745, 0.0),
    "Tanh2.10.12": (3040, 1746, 0.0001),
    "TanhPL": (5, 206, 0.0022),
    "TanhCORDIC": (8415, 3900, 0.0),
    "SigmoidLUT": (553, 142523, 0.0),
    "Sigmoid3.10.12": (3629, 2107, 0.0004),
    "SigmoidPLAN": (1, 73, 0.0059),
    "SigmoidCORDIC": (8447, 3932, 0.0),
    "ADD": (16, 16, 0.0),
    "MULT": (381, 212, 0.0),
    "DIV": (545, 361, 0.0),
    "ReLu": (30, 15, 0.0),
}


@dataclasses.dataclass(frozen=True)
class CostCoefficients:
    """Sec. 4.3 performance characterization.

    Attributes:
        xor_clks: CPU cycles to garble/evaluate one XOR gate.
        non_xor_clks: cycles for one non-XOR gate.
        cpu_hz: clock frequency of the testbed (i7-2600).
        bits_per_non_xor: garbled-table bits per non-XOR gate (2 rows x
            128 bits after row-reduction + half-gates).
        effective_non_xor_per_s: end-to-end throughput including transfer
            (Sec. 4.4: 2.56M non-XOR gates/s).
        effective_xor_per_s: Sec. 4.4: 5.11M XOR gates/s.
    """

    xor_clks: float = 62.0
    non_xor_clks: float = 164.0
    cpu_hz: float = 3.4e9
    bits_per_non_xor: int = 2 * 128
    effective_non_xor_per_s: float = 2.56e6
    effective_xor_per_s: float = 5.11e6


PAPER_COEFFICIENTS = CostCoefficients()


@dataclasses.dataclass(frozen=True)
class ComponentCosts:
    """Per-component (XOR, non-XOR) costs used by the analytic gate model.

    Two instances exist: the paper's Table 3 values (reproducing the
    published Tables 4-6 exactly) and our measured netlist values
    (showing the same shape with our constructions).
    """

    name: str
    mac_xor_per_element: float  # A(1xm)*B(mxn): xor = this*m*n + bias*n
    mac_non_xor_per_element: float
    mac_xor_bias_per_output: float
    mac_non_xor_bias_per_output: float
    relu: Tuple[int, int]
    tanh: Tuple[int, int]
    sigmoid: Tuple[int, int]
    softmax_per_stage: Tuple[int, int]

    def matvec(self, m: int, n: int) -> Tuple[int, int]:
        """Gate counts of an (m -> n) fully-connected layer."""
        xor = self.mac_xor_per_element * m * n + self.mac_xor_bias_per_output * n
        non_xor = (
            self.mac_non_xor_per_element * m * n
            + self.mac_non_xor_bias_per_output * n
        )
        return int(round(xor)), int(round(non_xor))


#: Table 3 row "A1xm . Bmxn": 397mn - 16n XOR, 228mn - 16n non-XOR,
#: with CORDIC activations (the configuration used in Sec. 4.5).
PAPER_COMPONENT_COSTS = ComponentCosts(
    name="paper-table3",
    mac_xor_per_element=397.0,
    mac_non_xor_per_element=228.0,
    mac_xor_bias_per_output=-16.0,
    mac_non_xor_bias_per_output=-16.0,
    relu=(30, 15),
    tanh=PAPER_TABLE3["TanhCORDIC"][:2],
    sigmoid=PAPER_TABLE3["SigmoidCORDIC"][:2],
    softmax_per_stage=(48, 32),
)

#: Table 4 rows: name -> (architecture string, XOR, non-XOR, comm MB,
#: comp s, execution s).
PAPER_TABLE4 = {
    "benchmark1": (
        "28x28-5C2-ReLu-100FC-ReLu-10FC-Softmax",
        4.31e7, 2.47e7, 791.0, 1.98, 9.67,
    ),
    "benchmark2": (
        "28x28-300FC-Sigmoid-100FC-Sigmoid-10FC-Softmax",
        1.09e8, 6.23e7, 1990.0, 4.99, 24.37,
    ),
    "benchmark3": ("617-50FC-Tanh-26FC-Softmax", 1.32e7, 7.54e6, 241.0, 0.60, 2.95),
    "benchmark4": (
        "5625-2000FC-Tanh-500FC-Tanh-19FC-Softmax",
        4.89e9, 2.81e9, 8.98e4, 224.50, 1098.3,
    ),
}

#: Table 5 rows: name -> (fold, XOR, non-XOR, comm MB, comp s, exec s,
#: improvement).
PAPER_TABLE5 = {
    "benchmark1": (9, 4.81e6, 2.76e6, 88.2, 0.22, 1.08, 8.95),
    "benchmark2": (12, 1.21e7, 6.57e6, 210.0, 0.54, 2.57, 9.48),
    "benchmark3": (6, 2.51e6, 1.40e6, 44.7, 0.11, 0.56, 5.27),
    "benchmark4": (120, 6.28e7, 3.39e7, 1080.0, 2.78, 13.26, 82.83),
}

#: Table 6: CryptoNets per-batch latency and per-sample communication.
CRYPTONETS_LATENCY_S = 570.11
CRYPTONETS_COMM_BYTES = 74 * 1024
CRYPTONETS_BATCH = 8192

#: Figure 6 plots a flat CryptoNets line whose marked crossovers (288 and
#: 2590 samples) imply ~2790 s — inconsistent with Table 6's 570.11 s by
#: ~4.9x.  Both calibrations are produced by the figure harness.
CRYPTONETS_FIG6_LATENCY_S = 2790.0
