"""Analytic gate-count model for paper-scale networks.

Building the benchmark-4 netlist (2.8 billion non-XOR gates) as Python
objects is infeasible, and unnecessary: gate counts are *exactly*
additive over components.  This module prices an architecture from
per-component costs — either the paper's Table 3 values (reproducing the
published Tables 4/5 to the digit) or costs measured from our own
generated netlists (validated against fully-compiled small models in
the test suite).
"""

from __future__ import annotations

import dataclasses
from functools import lru_cache
from typing import Tuple

from ..circuits import CircuitBuilder, FixedPointFormat
from ..circuits.activations import VARIANTS
from ..circuits.arith import (
    multiply_fixed_full,
    relu as relu_circuit,
    ripple_add,
    saturate_to_width,
)
from ..circuits.logic import max_tree
from ..circuits.netlist import GateCounts
from ..errors import CompileError
from .paper_costs import PAPER_COMPONENT_COSTS, ComponentCosts

__all__ = [
    "Layer",
    "fc",
    "conv",
    "activation",
    "pool",
    "softmax",
    "Architecture",
    "architecture_counts",
    "measured_component_costs",
]


@dataclasses.dataclass(frozen=True)
class Layer:
    """One costed layer of an abstract architecture.

    ``kind`` in {"fc", "conv", "relu", "tanh", "sigmoid", "maxpool",
    "softmax"}; the meaning of ``a``/``b``/``c`` depends on the kind (use
    the factory helpers below).
    """

    kind: str
    a: int
    b: int = 0
    c: int = 0


def fc(m: int, n: int) -> Layer:
    """Fully-connected layer with ``m`` inputs and ``n`` outputs."""
    return Layer("fc", m, n)


def conv(kernel_volume: int, output_units: int) -> Layer:
    """Convolution priced as a matvec: ``kernel_volume`` MACs per output.

    ``output_units`` counts all spatial positions times output channels
    (how the paper prices benchmark 1's conv layer).
    """
    return Layer("conv", kernel_volume, output_units)


def activation(kind: str, count: int) -> Layer:
    """``count`` instances of relu/tanh/sigmoid."""
    if kind not in ("relu", "tanh", "sigmoid"):
        raise CompileError(f"unknown activation {kind!r}")
    return Layer(kind, count)


def pool(windows: int, pool_area: int) -> Layer:
    """Max pooling: ``windows`` windows of ``pool_area`` values each."""
    return Layer("maxpool", windows, pool_area)


def softmax(n: int) -> Layer:
    """Output argmax over ``n`` classes ((n-1) CMP+MUX stages)."""
    return Layer("softmax", n)


@dataclasses.dataclass(frozen=True)
class Architecture:
    """A named, costed stack of abstract layers."""

    name: str
    layers: Tuple[Layer, ...]
    description: str = ""

    def mac_count(self) -> int:
        """Linear-layer MACs — what pre-processing divides (Table 5)."""
        total = 0
        for layer in self.layers:
            if layer.kind in ("fc", "conv"):
                total += layer.a * layer.b
        return total


def architecture_counts(
    arch: Architecture,
    costs: ComponentCosts = PAPER_COMPONENT_COSTS,
    mac_fold: float = 1.0,
) -> GateCounts:
    """Price an architecture under a component cost table.

    Args:
        arch: abstract architecture.
        costs: per-component costs (paper Table 3 or measured).
        mac_fold: divide linear-layer MAC gate counts by this factor —
            the paper's Table 5 compaction semantics (activation circuits
            are left untouched; validated against the published rows).

    Returns:
        Total gate counts.
    """
    xor = 0.0
    non_xor = 0.0
    for layer in arch.layers:
        if layer.kind in ("fc", "conv"):
            lx, ln = costs.matvec(layer.a, layer.b)
            xor += lx / mac_fold
            non_xor += ln / mac_fold
        elif layer.kind == "relu":
            xor += costs.relu[0] * layer.a
            non_xor += costs.relu[1] * layer.a
        elif layer.kind == "tanh":
            xor += costs.tanh[0] * layer.a
            non_xor += costs.tanh[1] * layer.a
        elif layer.kind == "sigmoid":
            xor += costs.sigmoid[0] * layer.a
            non_xor += costs.sigmoid[1] * layer.a
        elif layer.kind == "maxpool":
            stages = (layer.b - 1) * layer.a
            xor += costs.softmax_per_stage[0] * stages
            non_xor += costs.softmax_per_stage[1] * stages
        elif layer.kind == "softmax":
            stages = layer.a - 1
            xor += costs.softmax_per_stage[0] * stages
            non_xor += costs.softmax_per_stage[1] * stages
        else:  # pragma: no cover - factories restrict kinds
            raise CompileError(f"unknown layer kind {layer.kind!r}")
    return GateCounts(xor=int(round(xor)), non_xor=int(round(non_xor)))


def _count(build) -> GateCounts:
    builder = CircuitBuilder()
    build(builder)
    return builder.build().counts()


@lru_cache(maxsize=None)
def measured_component_costs(
    int_bits: int = 3,
    frac_bits: int = 12,
    accumulator_extra_bits: int = 12,
) -> ComponentCosts:
    """Derive a :class:`ComponentCosts` from our generated netlists.

    The per-MAC cost is one full-precision fixed multiply plus one
    accumulator-width add; the per-output bias is the final saturation
    stage.  The analytic model built from these is validated against the
    actually-compiled small models in the test suite.
    """
    fmt = FixedPointFormat(int_bits, frac_bits)
    width = fmt.width
    acc_width = width + accumulator_extra_bits

    def mult(builder: CircuitBuilder) -> None:
        a = builder.add_alice_inputs(width)
        b = builder.add_bob_inputs(width)
        builder.mark_output_bus(
            multiply_fixed_full(builder, a, b, fmt.frac_bits)
        )

    def acc_add(builder: CircuitBuilder) -> None:
        a = builder.add_alice_inputs(acc_width)
        b = builder.add_bob_inputs(acc_width)
        builder.mark_output_bus(ripple_add(builder, a, b))

    def saturation(builder: CircuitBuilder) -> None:
        a = builder.add_alice_inputs(acc_width)
        builder.mark_output_bus(saturate_to_width(builder, a, width))

    def relu_c(builder: CircuitBuilder) -> None:
        a = builder.add_alice_inputs(width)
        builder.mark_output_bus(relu_circuit(builder, a))

    def act(name: str):
        def build(builder: CircuitBuilder) -> None:
            a = builder.add_alice_inputs(width)
            builder.mark_output_bus(VARIANTS[name](builder, a, fmt))

        return build

    def cmp_mux(builder: CircuitBuilder) -> None:
        a = builder.add_alice_inputs(width)
        b = builder.add_bob_inputs(width)
        builder.mark_output_bus(max_tree(builder, [a, b]))

    mult_c = _count(mult)
    add_c = _count(acc_add)
    sat_c = _count(saturation)
    relu_counts = _count(relu_c)
    tanh_c = _count(act("TanhCORDIC"))
    sigmoid_c = _count(act("SigmoidCORDIC"))
    stage_c = _count(cmp_mux)
    return ComponentCosts(
        name=f"measured-1.{int_bits}.{frac_bits}",
        mac_xor_per_element=mult_c.xor + add_c.xor,
        mac_non_xor_per_element=mult_c.non_xor + add_c.non_xor,
        mac_xor_bias_per_output=sat_c.xor,
        mac_non_xor_bias_per_output=sat_c.non_xor,
        relu=(relu_counts.xor, relu_counts.non_xor),
        tanh=(tanh_c.xor, tanh_c.non_xor),
        sigmoid=(sigmoid_c.xor, sigmoid_c.non_xor),
        softmax_per_stage=(stage_c.xor, stage_c.non_xor),
    )
