"""Folded (sequential) dense-layer execution — paper Sec. 3.5 done live.

Instead of instantiating every MULT and ADD of a matrix-vector product,
DeepSecure garbles ONE multiply-accumulate cell plus an accumulator
register and clocks it once per weight: "A single multiplication is
performed at a time and the result is added to the previous steps".
This module builds that folded cell as a :class:`SequentialCircuit` and
drives a whole dense layer through the sequential garbling session, so
the constant-memory-footprint claim is demonstrated on the *live*
protocol, not just on gate counts.
"""

from __future__ import annotations

import dataclasses
import math
import secrets
from typing import List, Optional, Sequence

import numpy as np

from ..circuits.arith import multiply_accumulate
from ..circuits.fixedpoint import FixedPointFormat
from ..circuits.sequential import SequentialBuilder, SequentialCircuit
from ..errors import CompileError
from ..gc.cipher import HashKDF
from ..gc.ot import MODP_2048, OTGroup
from ..gc.sequential import SequentialSession

__all__ = ["folded_mac_cell", "FoldedDenseResult", "run_folded_dense"]


def folded_mac_cell(
    fmt: FixedPointFormat, fan_in: int
) -> SequentialCircuit:
    """One MAC datapath with an accumulator register (Sec. 3.5).

    Per cycle: Alice feeds one activation word, Bob one weight word; the
    register accumulates ``acc += (x * w) >> frac``.  The accumulator is
    sized for ``fan_in`` terms so the folded run is overflow-free,
    exactly like the combinational compiler's wide adder tree.
    """
    if fan_in < 1:
        raise CompileError("fan_in must be positive")
    product_width = 2 * fmt.width - fmt.frac_bits
    acc_width = product_width + max(1, math.ceil(math.log2(max(fan_in, 2))) + 1)
    builder = SequentialBuilder(name=f"folded_mac_{fmt.describe()}")
    x = builder.add_alice_inputs(fmt.width, name="x")
    w = builder.add_bob_inputs(fmt.width, name="w")
    acc = builder.add_registers(acc_width)
    total = multiply_accumulate(builder, acc, x, w, fmt.frac_bits)
    builder.bind_registers(acc, total)
    builder.mark_output_bus(total, name="acc")
    return builder.build_sequential()


@dataclasses.dataclass
class FoldedDenseResult:
    """Outcome of a folded dense-layer execution.

    Attributes:
        outputs: accumulator values per output unit (integer, frac
            scale) — pre-saturation, matching the combinational wide sum.
        cycles: total clock cycles garbled (= nonzero weights).
        core_gates: gates in the folded core (constant in layer size).
        comm_bytes: total garbled-table traffic.
    """

    outputs: List[int]
    cycles: int
    core_gates: int
    comm_bytes: int


def run_folded_dense(
    x_fixed: Sequence[int],
    weights_fixed: np.ndarray,
    fmt: FixedPointFormat,
    kdf: Optional[HashKDF] = None,
    ot_group: OTGroup = MODP_2048,
    rng=secrets,
) -> FoldedDenseResult:
    """Compute ``x @ W`` under sequential garbling, one MAC per cycle.

    Args:
        x_fixed: the client's activation words (signed fixed integers).
        weights_fixed: (in_dim, out_dim) signed fixed integer weights
            (the server's input).
        fmt: I/O fixed-point format.
        kdf, ot_group, rng: protocol parameters.

    Returns:
        :class:`FoldedDenseResult`; ``outputs[j]`` equals the integer
        reference ``sum(fixed_mul(x_i, w_ij))``.
    """
    weights_fixed = np.asarray(weights_fixed, dtype=np.int64)
    in_dim, out_dim = weights_fixed.shape
    if len(x_fixed) != in_dim:
        raise CompileError("activation width mismatch")
    cell = folded_mac_cell(fmt, fan_in=in_dim)
    mask = (1 << fmt.width) - 1

    def bits(value: int) -> List[int]:
        pattern = int(value) & mask
        return [(pattern >> i) & 1 for i in range(fmt.width)]

    outputs: List[int] = []
    total_comm = 0
    total_cycles = 0
    acc_width = cell.n_state
    for j in range(out_dim):
        alice_cycles = [bits(x) for x in x_fixed]
        bob_cycles = [bits(weights_fixed[i, j]) for i in range(in_dim)]
        session = SequentialSession(cell, kdf=kdf, ot_group=ot_group, rng=rng)
        result = session.run(alice_cycles, bob_cycles, cycles=in_dim)
        final = result.final_outputs
        value = 0
        for i, bit in enumerate(final):
            value |= bit << i
        if value >> (acc_width - 1):
            value -= 1 << acc_width
        outputs.append(value)
        total_comm += sum(result.comm.values())
        total_cycles += in_dim
    return FoldedDenseResult(
        outputs=outputs,
        cycles=total_cycles,
        core_gates=len(cell.core.gates),
        comm_bytes=total_comm,
    )
