"""Setup shim for environments without the ``wheel`` package.

Metadata lives in ``pyproject.toml``; this file only enables the legacy
``pip install -e . --no-use-pep517`` editable path.
"""

from setuptools import setup

setup()
