"""Distributed serving benchmarks: shard scaling and transport overhead.

Measures what the PR 9 serving tier costs and buys:

* **shard scaling** — ``ShardedService.infer_many`` across worker
  *processes* vs the single-process thread-pool path on the same batch
  (process parallelism sidesteps the GIL; the win tracks host cores);
* **online latency** — p50/p95 per-request online time under sharded
  serving;
* **transport overhead** — the same protocol run over in-memory deques
  vs the wire codec + kernel socketpairs (socket/memory throughput
  ratio; expected a little under 1.0 — the codec and kernel round trips
  are not free).
"""

import statistics
import time

import pytest

from repro.cli import _demo_service
from repro.transport import ShardedService

from _bench_util import record_trajectory, write_report

#: Batch size for the shard-scaling comparison (the acceptance bar asks
#: for >= 8 requests).
BATCH = 8


def _shard_factory():
    service, _ = _demo_service(pool_size=BATCH // 2, seed=11)
    return service


@pytest.fixture(scope="module")
def service_and_data():
    return _demo_service(pool_size=BATCH, history_limit=64, seed=11)


def test_shard_scaling_throughput(service_and_data, results_dir):
    """2 worker shards vs single-process serving on one batch."""
    service, x = service_and_data
    requests = list(x[:BATCH])

    service.prepare()
    start = time.perf_counter()
    single = service.infer_many(requests, max_workers=2)
    single_wall = time.perf_counter() - start
    single_rps = len(single) / single_wall

    sharded = ShardedService(_shard_factory, shards=2, prepare=BATCH // 2)
    try:
        start = time.perf_counter()
        results = sharded.infer_many(requests, max_workers=2)
        sharded_wall = time.perf_counter() - start
        stats = sharded.stats()
    finally:
        sharded.close()
    sharded_rps = len(results) / sharded_wall

    assert [r.label for r in results] == [r.label for r in single]
    assert stats["degraded_requests"] == 0

    online = sorted(r.wall_seconds for r in results)
    p50 = statistics.median(online)
    p95 = online[min(len(online) - 1, int(round(0.95 * (len(online) - 1))))]

    speedup = sharded_rps / single_rps
    text = (
        f"single-process: {len(single)} requests in {single_wall:.2f} s "
        f"({single_rps:.2f} req/s)\n"
        f"2-shard fleet:  {len(results)} requests in {sharded_wall:.2f} s "
        f"({sharded_rps:.2f} req/s)\n"
        f"shard speedup: {speedup:.2f}x | online p50 {p50:.3f} s, "
        f"p95 {p95:.3f} s"
    )
    write_report(results_dir, "distributed_shard_scaling", text)
    record_trajectory(
        "pr9-shard-scaling",
        {
            "pr": 9,
            "batch": BATCH,
            "shards": 2,
            "single_process_rps": round(single_rps, 4),
            "sharded_rps": round(sharded_rps, 4),
            "shard_speedup": round(speedup, 3),
            "online_p50_s": round(p50, 6),
            "online_p95_s": round(p95, 6),
        },
    )


def test_socket_transport_overhead(service_and_data, results_dir):
    """Wire codec + kernel socketpair vs in-memory deques, same protocol."""
    import random

    from repro.gc import TwoPartySession
    from repro.gc.ot import TEST_GROUP_512
    from repro.transport import socketpair_channel_factory

    service, x = service_and_data
    circuit = service.compiled.circuit
    alice_bits = service.compiled.client_bits(x[0])
    bob_bits = service._server_bits

    def run(channel_factory):
        session = TwoPartySession(
            circuit, ot_group=TEST_GROUP_512, rng=random.Random(5),
            channel_factory=channel_factory,
        )
        start = time.perf_counter()
        result = session.run(alice_bits, bob_bits)
        return result, time.perf_counter() - start

    # one warmup each, then the measured pass
    run(None)
    memory_result, memory_s = run(None)
    run(socketpair_channel_factory())
    socket_result, socket_s = run(socketpair_channel_factory())

    assert socket_result.outputs == memory_result.outputs
    assert socket_result.comm == memory_result.comm

    ratio = memory_s / socket_s  # socket throughput relative to memory
    text = (
        f"memory transport: {memory_s:.3f} s/run\n"
        f"socket transport: {socket_s:.3f} s/run\n"
        f"socket/memory throughput: {ratio:.2f}x "
        f"(same outputs, same {sum(memory_result.comm.values())} comm bytes)"
    )
    write_report(results_dir, "distributed_transport_overhead", text)
    record_trajectory(
        "pr9-socket-transport",
        {
            "pr": 9,
            "memory_run_s": round(memory_s, 6),
            "socket_run_s": round(socket_s, 6),
            "socket_transport_speedup": round(ratio, 3),
            "comm_bytes": sum(memory_result.comm.values()),
        },
    )
