"""Figure 6: expected processing delay vs client batch size.

Generates the three curves, locates the crossovers, renders the log-log
ASCII plot and asserts the paper's marked values (288 / 2590 / 8192).
Also emits the Table 6-calibrated variant exposing the paper-internal
inconsistency documented in DESIGN.md discrepancy #3.
"""


from repro.analysis import ascii_plot, compute_delay_curves, find_crossover
from repro.baselines import CryptoNetsCostModel
from repro.compile import CRYPTONETS_FIG6_LATENCY_S, CRYPTONETS_LATENCY_S

from _bench_util import write_report


def test_fig6_curves_and_crossovers(benchmark, results_dir):
    curves = benchmark(compute_delay_curves)
    text = (
        ascii_plot(curves)
        + f"\npaper marks: 288 / 2590 / 8192 (batch boundary)"
    )
    write_report(results_dir, "fig6_curves", text)
    assert abs(curves.crossover_plain - 288) <= 2
    assert abs(curves.crossover_preprocessed - 2590) <= 10


def test_fig6_abstract_claim(benchmark, results_dir):
    """Abstract: 'the best choice ... less than 2600 samples'."""
    curves = benchmark(compute_delay_curves)
    assert curves.crossover_preprocessed < 2600
    assert curves.crossover_preprocessed > 2500


def test_fig6_table6_calibration(benchmark, results_dir):
    """With Table 6's 570.11 s flat line the crossovers land at 58/527 —
    inconsistent with the figure's own marks by ~4.9x."""
    cost = CryptoNetsCostModel(batch_latency_s=CRYPTONETS_LATENCY_S)
    plain = benchmark(lambda: find_crossover(9.67, cost))
    prep = find_crossover(1.08, cost)
    ratio = CRYPTONETS_FIG6_LATENCY_S / CRYPTONETS_LATENCY_S
    write_report(
        results_dir,
        "fig6_calibration_check",
        f"crossovers with Table-6 latency (570.11 s): {plain} / {prep}\n"
        f"crossovers with figure-consistent latency (~2790 s): 288 / 2590\n"
        f"implied internal inconsistency factor: {ratio:.2f}x",
    )
    assert plain == 58 and prep == 527


def test_fig6_linear_scaling(benchmark):
    """DeepSecure's cost is strictly linear in batch size (no batching
    cliffs) — the property that makes it the streaming-friendly choice."""
    curves = benchmark(lambda: compute_delay_curves(max_samples=4096))
    per_sample = [
        delay / n for n, delay in zip(curves.samples, curves.deepsecure_plain)
    ]
    assert max(per_sample) - min(per_sample) < 1e-9
