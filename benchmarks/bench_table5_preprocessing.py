"""Table 5: the benchmarks after data/network pre-processing.

Two reproductions:

1. the paper's own semantics — divide linear-layer MACs by the published
   fold, keep activation circuits — must regenerate the published rows;
2. an *end-to-end measured* fold on the synthetic benchmark-3/4 stand-ins:
   run Algorithm 1 + pruning for real, compare achieved fold and accuracy.
"""


from repro.compile import GCCostModel, PAPER_TABLE5, architecture_counts
from repro.data import train_val_test_split
from repro.nn import TrainConfig, Trainer, accuracy
from repro.preprocess import ProjectionConfig, preprocess_model
from repro.zoo import PAPER_ARCHITECTURES, PAPER_FOLDS, benchmark_dataset, build_benchmark3_model

from _bench_util import write_report


def test_table5_paper_folds(benchmark, results_dir):
    model = GCCostModel()

    def compute():
        rows = {}
        for name, arch in PAPER_ARCHITECTURES.items():
            fold = PAPER_FOLDS[name]
            before = model.breakdown(architecture_counts(arch))
            after = model.breakdown(architecture_counts(arch, mac_fold=fold))
            rows[name] = (fold, before, after)
        return rows

    rows = benchmark(compute)
    lines = [
        f"{'bench':<12}{'fold':>6}{'non-XOR':>12}{'comm MB':>10}"
        f"{'exec s':>9}{'improve':>9}   paper(exec, improve)"
    ]
    for name, (fold, before, after) in rows.items():
        paper = PAPER_TABLE5[name]
        improvement = before.execution_s / after.execution_s
        lines.append(
            f"{name:<12}{fold:>6}{after.non_xor:>12.3e}{after.comm_mb:>10.1f}"
            f"{after.execution_s:>9.2f}{improvement:>9.2f}   "
            f"({paper[5]}, {paper[6]})"
        )
        assert abs(after.non_xor - paper[2]) / paper[2] < 0.05, name
        assert abs(after.execution_s - paper[5]) / paper[5] < 0.05, name
        assert abs(improvement - paper[6]) / paper[6] < 0.05, name
    write_report(results_dir, "table5_paper_folds", "\n".join(lines))


def test_measured_fold_benchmark3(benchmark, results_dir):
    """End-to-end Alg. 1 + pruning on the ISOLET stand-in (B3)."""
    x, y = benchmark_dataset("benchmark3", 1500, seed=1)
    xtr, ytr, xv, yv, xte, yte = train_val_test_split(x, y, seed=2)
    model = build_benchmark3_model(seed=3)
    Trainer(model, TrainConfig(epochs=10, learning_rate=0.05)).fit(xtr, ytr)

    def run():
        return preprocess_model(
            model.clone(), xtr, ytr, xv, yv,
            projection_config=ProjectionConfig(gamma=0.45, batch_size=4000),
            prune_sparsity=0.5,
            retrain_config=TrainConfig(epochs=8, learning_rate=0.05),
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    test_acc = accuracy(
        report.condensed.predict(report.projection.embed(xte)), yte
    )
    text = (
        f"benchmark3 stand-in, end-to-end pre-processing:\n"
        f"  rank: 617 -> {report.projection.rank}\n"
        f"  MACs: {report.macs_dense} -> {report.macs_condensed} "
        f"(fold {report.fold:.1f}x; paper reports 6x)\n"
        f"  accuracy: {report.accuracy_original:.3f} -> "
        f"{report.accuracy_condensed:.3f} (val), {test_acc:.3f} (test)\n"
        f"  accuracy drop: {report.accuracy_drop:+.3f} (paper: none)"
    )
    write_report(results_dir, "table5_measured_b3", text)
    assert report.fold >= 4.0
    assert report.accuracy_drop <= 0.03


def test_measured_fold_benchmark4(benchmark, results_dir):
    """Scaled-down smart-sensing benchmark (B4): the periodic data is
    extremely low-rank, which is why the paper reaches 120x there."""
    from repro.zoo import build_benchmark4_model

    x, y = benchmark_dataset("benchmark4", 500, seed=4)
    xtr, ytr, xv, yv = x[:400], y[:400], x[400:], y[400:]
    model = build_benchmark4_model(scale=0.05, seed=5)  # 5625-100-25-19
    Trainer(model, TrainConfig(epochs=6, learning_rate=0.05)).fit(xtr, ytr)

    def run():
        return preprocess_model(
            model.clone(), xtr, ytr, xv, yv,
            projection_config=ProjectionConfig(gamma=0.5, batch_size=2000),
            prune_sparsity=0.6,
            retrain_config=TrainConfig(epochs=6, learning_rate=0.05),
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        f"benchmark4 stand-in (scale 0.05):\n"
        f"  rank: 5625 -> {report.projection.rank}\n"
        f"  fold: {report.fold:.1f}x (paper reports 120x at full scale)\n"
        f"  accuracy: {report.accuracy_original:.3f} -> {report.accuracy_condensed:.3f}"
    )
    write_report(results_dir, "table5_measured_b4", text)
    assert report.fold >= 10.0
    assert report.accuracy_drop <= 0.05
