"""Sec. 3.5 live: a dense layer as a folded sequential garbled circuit.

Runs the same matrix-vector product two ways under the real protocol —
as one combinational netlist and as a one-MAC-per-cycle sequential
circuit — verifying identical integer results, constant netlist memory
for the folded form, and identical total garbled-table traffic (the
communication is workload-determined, not structure-determined).
"""

import random

import numpy as np

from repro.circuits import CircuitBuilder, FixedPointFormat
from repro.circuits.arith import multiply_fixed_full, ripple_add, sign_extend
from repro.compile import folded_mac_cell, run_folded_dense
from repro.gc import execute
from repro.gc.ot import TEST_GROUP_512
from repro.nn import fixed_mul

from _bench_util import write_report

FMT = FixedPointFormat(2, 6)


def combinational_matvec(in_dim, acc_width):
    builder = CircuitBuilder("matvec")
    x = [builder.add_alice_inputs(FMT.width) for _ in range(in_dim)]
    w = [builder.add_bob_inputs(FMT.width) for _ in range(in_dim)]
    acc = None
    for xi, wi in zip(x, w):
        product = multiply_fixed_full(builder, xi, wi, FMT.frac_bits)
        widened = sign_extend(builder, product, acc_width)
        acc = widened if acc is None else ripple_add(builder, acc, widened)
    builder.mark_output_bus(acc)
    return builder.build()


def test_folded_vs_combinational(benchmark, results_dir):
    rng = np.random.default_rng(0)
    in_dim = 6
    x = FMT.encode_array(rng.uniform(-1, 1, size=in_dim))
    w = FMT.encode_array(rng.uniform(-1, 1, size=(in_dim, 1)))
    reference = int(fixed_mul(x, w[:, 0], FMT.frac_bits).sum())

    folded = benchmark.pedantic(
        lambda: run_folded_dense(
            list(x), w, FMT, ot_group=TEST_GROUP_512, rng=random.Random(1)
        ),
        rounds=1, iterations=1,
    )
    assert folded.outputs == [reference]

    cell = folded_mac_cell(FMT, fan_in=in_dim)
    acc_width = cell.n_state
    comb = combinational_matvec(in_dim, acc_width)
    bits = []
    for value in list(x) + list(w[:, 0]):
        pattern = int(value) & ((1 << FMT.width) - 1)
        bits.append([(pattern >> i) & 1 for i in range(FMT.width)])
    alice = [b for bus in bits[:in_dim] for b in bus]
    bob = [b for bus in bits[in_dim:] for b in bus]
    result = execute(comb, alice, bob, ot_group=TEST_GROUP_512,
                     rng=random.Random(2))
    value = 0
    for i, bit in enumerate(result.outputs):
        value |= bit << i
    if value >> (acc_width - 1):
        value -= 1 << acc_width
    assert value == reference

    text = (
        f"matvec (1 x {in_dim}) under GC, both forms agree: {reference}\n"
        f"combinational netlist: {len(comb.gates)} gates "
        f"({comb.counts().non_xor} tables)\n"
        f"folded core netlist:   {folded.core_gates} gates, "
        f"run for {folded.cycles} cycles\n"
        f"memory footprint ratio: "
        f"{len(comb.gates) / folded.core_gates:.1f}x smaller resident netlist"
    )
    write_report(results_dir, "folded_sequential", text)
    assert folded.core_gates * 2 < len(comb.gates)


def test_folded_core_constant_in_layer_size(benchmark):
    sizes = [4, 16, 64]
    cores = [len(folded_mac_cell(FMT, fan_in=n).core.gates) for n in sizes]
    benchmark(lambda: folded_mac_cell(FMT, fan_in=64))
    # only the accumulator width (log2 fan-in) moves the core size
    assert max(cores) - min(cores) <= 20
