"""Ablation: the synthesis-style optimizations DESIGN.md calls out.

Quantifies what each GC-oriented optimization buys on representative
netlists — the reproduction analogue of the paper's "GC-optimized
library" claim (Sec. 3.4):

* structural hashing (CSE) on/off;
* constant folding on/off;
* sequential folding vs combinational unrolling (memory footprint,
  Sec. 3.5);
* the generalized half-gates basis (non-XOR invariance of lowering).
"""


from repro.circuits import CircuitBuilder, FixedPointFormat
from repro.circuits.activations import tanh_lut
from repro.circuits.arith import multiply_fixed, ripple_add
from repro.circuits.arith import multiply_accumulate
from repro.circuits.sequential import SequentialBuilder
from repro.synthesis import lower_to_gc_basis, optimize

from _bench_util import write_report

FMT = FixedPointFormat(3, 12)


def _mult_counts(hashing, folding):
    bld = CircuitBuilder(use_structural_hashing=hashing, fold_constants=folding)
    a = bld.add_alice_inputs(FMT.width)
    b = bld.add_bob_inputs(FMT.width)
    bld.mark_output_bus(multiply_fixed(bld, a, b, FMT.frac_bits))
    return bld.build().counts()


def test_ablation_builder_optimizations(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: {
            (h, f): _mult_counts(h, f)
            for h in (True, False)
            for f in (True, False)
        },
        rounds=1, iterations=1,
    )
    baseline = rows[(True, True)].non_xor
    lines = [f"{'hashing':<9}{'folding':<9}{'XOR':>8}{'non-XOR':>9}{'vs opt':>8}"]
    for (h, f), counts in rows.items():
        lines.append(
            f"{str(h):<9}{str(f):<9}{counts.xor:>8}{counts.non_xor:>9}"
            f"{counts.non_xor / baseline:>8.2f}"
        )
    write_report(results_dir, "ablation_builder", "\n".join(lines))
    # folding must help (constant partial products disappear)
    assert rows[(True, False)].non_xor >= rows[(True, True)].non_xor
    assert rows[(False, False)].non_xor >= rows[(True, True)].non_xor


def test_ablation_lut_hashing(benchmark, results_dir):
    """Structural hashing is what makes monotone LUTs compact — the 47x
    TanhLUT finding in EXPERIMENTS.md."""
    small = FixedPointFormat(3, 8)  # 12-bit: saturated tail dedups

    def build(hashing):
        bld = CircuitBuilder(use_structural_hashing=hashing)
        x = bld.add_alice_inputs(small.width)
        bld.mark_output_bus(tanh_lut(bld, x, small))
        return bld.build().counts()

    hashed = benchmark.pedantic(lambda: build(True), rounds=1, iterations=1)
    unhashed = build(False)
    write_report(
        results_dir,
        "ablation_lut_hashing",
        f"TanhLUT (1.3.8): hashed {hashed.non_xor} non-XOR, "
        f"unhashed {unhashed.non_xor} non-XOR "
        f"({unhashed.non_xor / max(hashed.non_xor,1):.1f}x reduction)",
    )
    assert hashed.non_xor * 2 <= unhashed.non_xor


def test_ablation_sequential_vs_unrolled(benchmark, results_dir):
    """Sec. 3.5: the folded MAC keeps netlist memory constant while the
    unrolled one grows linearly with the vector length."""
    def folded():
        bld = SequentialBuilder()
        x = bld.add_alice_inputs(8)
        w = bld.add_bob_inputs(8)
        acc = bld.add_registers(20)
        total = multiply_accumulate(bld, acc, x, w, frac_bits=4)
        bld.bind_registers(acc, total)
        bld.mark_output_bus(total)
        return bld.build_sequential()

    seq = benchmark.pedantic(folded, rounds=1, iterations=1)
    core_gates = len(seq.core.gates)
    rows = [f"folded core: {core_gates} gates (constant for any vector length)"]
    for cycles in (4, 16, 64):
        unrolled = seq.unroll(cycles)
        rows.append(
            f"unrolled x{cycles:<3}: {len(unrolled.gates)} gates"
        )
        assert len(unrolled.gates) == cycles * core_gates
    write_report(results_dir, "ablation_sequential", "\n".join(rows))


def test_ablation_gc_basis_lowering(benchmark, results_dir):
    """Any netlist lowers to {XOR, XNOR, NOT, AND} without extra tables
    (generalized half-gates makes OR/NAND/... cost-equal)."""
    bld = CircuitBuilder(fold_constants=False, use_structural_hashing=False)
    a = bld.add_alice_inputs(FMT.width)
    b = bld.add_bob_inputs(FMT.width)
    bld.mark_output_bus(ripple_add(bld, a, b))
    import random

    rng = random.Random(0)
    wires = list(a) + list(b)
    for _ in range(60):
        op = rng.choice(["or", "nand", "nor", "andn"])
        wires.append(getattr(bld, f"emit_{op}")(rng.choice(wires), rng.choice(wires)))
    bld.mark_output(wires[-1])
    circuit = bld.build()
    lowered = benchmark(lambda: lower_to_gc_basis(circuit))
    optimized, _ = optimize(lowered)
    write_report(
        results_dir,
        "ablation_basis",
        f"mixed-basis: {circuit.counts().non_xor} non-XOR -> "
        f"lowered: {lowered.counts().non_xor} -> optimized: "
        f"{optimized.counts().non_xor}",
    )
    assert lowered.counts().non_xor <= circuit.counts().non_xor
