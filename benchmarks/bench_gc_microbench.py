"""Sec. 4.3-4.4: GC performance characterization on this host.

Measures our engine's per-gate garble/evaluate throughput (the paper's
62/164 clk and 2.56M/5.11M gates/s figures on its testbed), verifies the
alpha = 2 x 128 bit/non-XOR communication constant, and benchmarks the
protocol phases end to end.
"""

import random


from repro.analysis import build_gate_chain, characterize
from repro.compile import PAPER_COEFFICIENTS
from repro.gc import Evaluator, Garbler, execute
from repro.gc.cipher import FixedKeyAES
from repro.gc.ot import TEST_GROUP_512

from _bench_util import write_report


def test_throughput_characterization(benchmark, results_dir):
    report = benchmark.pedantic(
        lambda: characterize(n_gates=20000), rounds=1, iterations=1
    )
    text = (
        f"host garbling engine (SHA-256 oracle, pure Python):\n"
        f"  non-XOR throughput: {report.non_xor_per_s/1e3:.1f}k gates/s "
        f"(paper: {PAPER_COEFFICIENTS.effective_non_xor_per_s/1e6:.2f}M)\n"
        f"  XOR throughput:     {report.xor_per_s/1e3:.1f}k gates/s "
        f"(paper: {PAPER_COEFFICIENTS.effective_xor_per_s/1e6:.2f}M)\n"
        f"  slowdown vs paper's AES-NI C++: {report.slowdown_vs_paper:.0f}x\n"
        f"  implied clks/gate at 3.4 GHz: XOR {report.coefficients.xor_clks:.0f} "
        f"(paper 62), non-XOR {report.coefficients.non_xor_clks:.0f} (paper 164)"
    )
    write_report(results_dir, "gc_throughput", text)
    assert report.non_xor_per_s > 5_000
    assert report.xor_per_s > report.non_xor_per_s


def test_garble_throughput(benchmark):
    circuit = build_gate_chain(5000, "and")
    rng = random.Random(0)

    def garble():
        return Garbler(circuit, rng=rng).garble()

    garbled = benchmark(garble)
    assert len(garbled.tables) == 5000


def test_evaluate_throughput(benchmark):
    circuit = build_gate_chain(5000, "and")
    rng = random.Random(0)
    garbler = Garbler(circuit, rng=rng)
    garbled = garbler.garble()
    alice = garbler.input_labels_for(list(circuit.alice_inputs), [1, 0])
    bob = [garbler.labels.select(w, 1) for w in circuit.bob_inputs]
    evaluator = Evaluator(circuit)
    benchmark(lambda: evaluator.evaluate(garbled, alice, bob))


def test_fixed_key_aes_backend_slower_but_correct(benchmark, results_dir):
    """The paper-faithful AES backend: correctness at pure-Python speed."""
    circuit = build_gate_chain(200, "and")
    rng = random.Random(1)
    kdf = FixedKeyAES()

    def run():
        garbler = Garbler(circuit, kdf=kdf, rng=rng)
        garbled = garbler.garble()
        evaluator = Evaluator(circuit, kdf=kdf)
        alice = garbler.input_labels_for(list(circuit.alice_inputs), [1, 1])
        bob = [garbler.labels.select(w, 0) for w in circuit.bob_inputs]
        wires = evaluator.evaluate(garbled, alice, bob)
        return garbler.decode_outputs(evaluator.output_labels(wires))

    outputs = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outputs == [0]  # AND chain with a zero input


def test_alpha_constant(benchmark, results_dir):
    """Eq. 4: every non-XOR gate costs exactly 2 x 128 transferred bits."""
    rng = random.Random(2)
    sizes = [100, 500, 1000]
    rows = []
    for n in sizes:
        circuit = build_gate_chain(n, "and")
        result = execute(circuit, [1, 0], [1, 1],
                         ot_group=TEST_GROUP_512, rng=rng)
        table_bytes = result.comm["tables"] - 4  # frame prefix
        rows.append((n, table_bytes, table_bytes / n))
        assert table_bytes == 32 * n
    text = "\n".join(
        f"non-XOR={n:>5}: tables={b:>7} B = {r:.0f} B/gate (alpha = 256 bit)"
        for n, b, r in rows
    )
    write_report(results_dir, "gc_alpha_constant", text)
