"""Table 4: the four benchmarks without pre-processing.

Gate counts from the analytic model with the paper's Table 3 component
costs must land on the published values (this is how the paper's own
numbers compose); the same architectures under *our measured* component
costs show the preserved shape at a ~2.5x constant factor.
"""


from repro.compile import (
    GCCostModel,
    PAPER_COMPONENT_COSTS,
    PAPER_TABLE4,
    architecture_counts,
    measured_component_costs,
)
from repro.zoo import PAPER_ARCHITECTURES

from _bench_util import write_report


def _rows(costs):
    model = GCCostModel()
    rows = {}
    for name, arch in PAPER_ARCHITECTURES.items():
        rows[name] = model.breakdown(architecture_counts(arch, costs))
    return rows


def test_table4_paper_costs(benchmark, results_dir):
    rows = benchmark(lambda: _rows(PAPER_COMPONENT_COSTS))
    lines = [
        f"{'bench':<12}{'XOR':>11}{'non-XOR':>11}{'comm MB':>10}"
        f"{'comp s':>9}{'exec s':>9}   paper exec"
    ]
    for name, row in rows.items():
        paper = PAPER_TABLE4[name]
        lines.append(
            f"{name:<12}{row.xor:>11.3e}{row.non_xor:>11.3e}"
            f"{row.comm_mb:>10.1f}{row.computation_s:>9.2f}"
            f"{row.execution_s:>9.2f}   {paper[5]}"
        )
        assert abs(row.xor - paper[1]) / paper[1] < 0.01, name
        assert abs(row.non_xor - paper[2]) / paper[2] < 0.01, name
        assert abs(row.comm_mb - paper[3]) / paper[3] < 0.01, name
        assert abs(row.computation_s - paper[4]) / paper[4] < 0.01, name
        assert abs(row.execution_s - paper[5]) / paper[5] < 0.01, name
    write_report(results_dir, "table4_paper_costs", "\n".join(lines))


def test_table4_measured_costs(benchmark, results_dir):
    """Same architectures under our netlist-measured component costs."""
    costs = measured_component_costs(3, 12)
    rows = benchmark(lambda: _rows(costs))
    lines = [
        f"{'bench':<12}{'non-XOR':>12}{'exec s':>10}{'ratio vs paper':>16}"
    ]
    for name, row in rows.items():
        paper_exec = PAPER_TABLE4[name][5]
        ratio = row.execution_s / paper_exec
        lines.append(
            f"{name:<12}{row.non_xor:>12.3e}{row.execution_s:>10.2f}{ratio:>16.2f}"
        )
        # shape preserved: constant factor, same ordering
        assert 1.5 <= ratio <= 3.5, (name, ratio)
    ordering = [rows[n].execution_s for n in
                ("benchmark3", "benchmark1", "benchmark2", "benchmark4")]
    assert ordering == sorted(ordering)
    write_report(results_dir, "table4_measured_costs", "\n".join(lines))


def test_benchmark1_arithmetic_discrepancy(benchmark, results_dir):
    """DESIGN.md discrepancy #1: the paper's 865 vs the correct 845."""
    from repro.zoo import benchmark1_architecture

    paper = benchmark(
        lambda: architecture_counts(benchmark1_architecture(paper_arithmetic=True))
    )
    fixed = architecture_counts(benchmark1_architecture(paper_arithmetic=False))
    assert paper.non_xor > fixed.non_xor
    delta = (paper.non_xor - fixed.non_xor) / paper.non_xor
    write_report(
        results_dir,
        "table4_b1_discrepancy",
        f"B1 non-XOR with paper arithmetic (865): {paper.non_xor:.4e}\n"
        f"B1 non-XOR structurally correct (845):  {fixed.non_xor:.4e}\n"
        f"relative inflation in the published row: {delta:.2%}",
    )
