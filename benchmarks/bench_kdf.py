"""PR 5 KDF tier: block-parallel SHA-256 kernel + autotuned oracle choice.

Three measurements around the garbling oracle — the symmetric-key
primitive the paper says dominates GC cost — recorded as the
``pr5-vector-sha256`` entry of the perf trajectory:

* ``hash_many`` throughput of every registered backend (hashlib loop,
  block-parallel NumPy kernel, fixed-key AES) across batch widths, plus
  the kernel under ``ParallelKDF`` chunk-splitting (ufuncs release the
  GIL, so this row scales with host cores);
* the host calibration (:func:`repro.gc.calibrate_kdf`) that ``auto``
  mode uses, persisted to ``results/kdf_calibration.json`` so CI
  archives each runner's crossover;
* end-to-end garble + evaluate of the demo DL netlist under
  ``kdf_backend="auto"`` vs the plain hashlib loop.

Honesty note: the kernel's single-thread standing is *host dependent*.
Where OpenSSL one-shots SHA-256 through SHA-NI silicon (~0.6 us/row,
bulk >= 1 GB/s) the pure-NumPy kernel roughly ties the loop and the
calibrator rightly keeps hashlib; without SHA-NI, or with cores for
``ParallelKDF`` to chunk across, the kernel is the one that scales.
The trajectory entry records the measured ratios either way — the
``auto`` backend guarantees serving never regresses.

Set ``REPRO_BENCH_QUICK=1`` for the CI configuration.  The kernel
sanity floor (``REPRO_BENCH_VEC_SHA_FLOOR``, default 0.5) asserts the
kernel is within 2x of the loop even on SHA-NI hosts; hosts where the
kernel should win outright can raise it.
"""

import hashlib
import json
import os
import time

import numpy as np

from repro.cli import _demo_service
from repro.gc import (
    FixedKeyAES,
    HashKDF,
    ParallelKDF,
    VectorHashKDF,
    calibrate_kdf,
)
from repro.gc.cipher import ROW_BYTES

from _bench_util import quick_mode, record_trajectory, write_report

#: sha256_vec hash_many vs the hashlib loop at the headline width; a
#: *sanity* bar (kernel must stay in the loop's league even where
#: SHA-NI makes the loop nearly unbeatable single-threaded).
VEC_SHA_FLOOR = float(os.environ.get("REPRO_BENCH_VEC_SHA_FLOOR", "0.5"))

#: end-to-end auto-vs-hashlib garble+evaluate (auto must never lose
#: beyond noise — that is the autotuner's whole contract).
AUTO_E2E_FLOOR = float(os.environ.get("REPRO_BENCH_AUTO_E2E_FLOOR", "0.8"))

#: headline width for the recorded speedup (ISSUE 5 targets >= 4096).
HEADLINE_WIDTH = 4096


def _rows(width: int, seed: int = 0xD5EC) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(width, ROW_BYTES), dtype=np.uint8)


def _best_rows_per_s(kdf, rows, repeats: int) -> float:
    kdf.hash_many(rows[:64])  # warm scratch / thread pools
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        kdf.hash_many(rows)
        best = min(best, time.perf_counter() - start)
    return rows.shape[0] / best


def _sha_ni_likely() -> bool:
    """Heuristic: bulk hashlib >= 1 GB/s means hardware SHA."""
    data = b"\xa5" * (1 << 20)
    start = time.perf_counter()
    hashlib.sha256(data).digest()
    elapsed = time.perf_counter() - start
    return (len(data) / elapsed) >= 1e9


def test_kdf_backend_throughput(results_dir):
    """Oracle registry shoot-out + the pr5 trajectory entry."""
    quick = quick_mode()
    repeats = 2 if quick else 5
    widths = (1024, HEADLINE_WIDTH) if quick else (1024, 4096, 16384)
    cores = os.cpu_count() or 1

    backends = {
        "hashlib": HashKDF(),
        "sha256_vec": VectorHashKDF(min_width=0),
        "fixed_key_aes": FixedKeyAES(),
        f"parallel[sha256_vec]x{cores}": ParallelKDF(
            VectorHashKDF(min_width=0), workers=cores,
            min_rows_per_worker=512,
        ),
    }
    table = {}
    for width in widths:
        rows = _rows(width)
        table[width] = {
            name: _best_rows_per_s(kdf, rows, repeats)
            for name, kdf in backends.items()
        }
    backends[f"parallel[sha256_vec]x{cores}"].close()

    headline = table[HEADLINE_WIDTH]
    vec_speedup = headline["sha256_vec"] / headline["hashlib"]
    par_speedup = (
        headline[f"parallel[sha256_vec]x{cores}"] / headline["hashlib"]
    )
    aes_speedup = headline["fixed_key_aes"] / headline["hashlib"]
    sha_ni = _sha_ni_likely()

    lines = [
        f"host: {cores} core(s), hashlib SHA-NI likely: {sha_ni}",
        f"{'width':>8}" + "".join(f"{n:>26}" for n in backends),
    ]
    for width in widths:
        lines.append(
            f"{width:>8}" + "".join(
                f"{table[width][n] / 1e6:>23.2f}M/s" for n in backends
            )
        )
    lines.append(
        f"headline (width {HEADLINE_WIDTH}): sha256_vec {vec_speedup:.2f}x, "
        f"parallel {par_speedup:.2f}x, fixed-key AES {aes_speedup:.2f}x "
        f"vs hashlib loop"
    )
    write_report(results_dir, "kdf_backends", "\n".join(lines))

    record_trajectory(
        "pr5-vector-sha256",
        {
            "pr": 5,
            "host_cores": cores,
            "sha_ni_hashlib": sha_ni,
            "width": HEADLINE_WIDTH,
            "hashlib_rows_per_s": round(headline["hashlib"]),
            "sha256_vec_rows_per_s": round(headline["sha256_vec"]),
            "hash_many_speedup": round(vec_speedup, 3),
            "parallel_hash_many_speedup": round(par_speedup, 3),
            "aes_hash_many_speedup": round(aes_speedup, 3),
            "quick_mode": quick,
        },
    )
    assert vec_speedup >= VEC_SHA_FLOOR, (
        f"sha256_vec only {vec_speedup:.2f}x of the hashlib loop at width "
        f"{HEADLINE_WIDTH} (floor {VEC_SHA_FLOOR}x)"
    )
    # the parallel wrapper must never lose to its own inner kernel
    assert par_speedup >= vec_speedup * 0.8


def test_calibration_artifact(results_dir):
    """Persist the auto-mode calibration CI consumes as an artifact."""
    cal = calibrate_kdf(include_aes=not quick_mode())
    payload = cal.as_dict()
    payload["headline_speedup"] = round(
        cal.speedup("sha256_vec", HEADLINE_WIDTH), 3
    )
    path = results_dir / "kdf_calibration.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n[kdf_calibration] -> {path}")
    # the calibrator must agree with its own measurements: whichever
    # backend it reports as best at a width really measured faster there
    for width in cal.widths:
        best = cal.best_sha_backend(width)
        if best == "sha256_vec":
            assert (
                cal.rows_per_s["sha256_vec"][width]
                >= cal.rows_per_s["hashlib"][width]
            )


def test_end_to_end_auto_backend(results_dir):
    """Demo-netlist garble+evaluate: auto vs pinned hashlib loop.

    ``auto`` picks per host; the contract asserted here is *never
    slower beyond noise* — and byte-identical labels, which the tier-1
    suite property-tests separately.
    """
    reps = 1 if quick_mode() else 3

    def run(kdf_backend):
        service, x = _demo_service(kdf_backend=kdf_backend)
        # one warm-up inference compiles the circuit and fills caches
        service.infer(x[0])
        best = float("inf")
        label = None
        for _ in range(reps):
            start = time.perf_counter()
            record = service.infer(x[1])
            best = min(best, time.perf_counter() - start)
            label = record.label
        service.close()
        return best, label

    auto_s, auto_label = run("auto")
    hashlib_s, hashlib_label = run("hashlib")
    assert auto_label == hashlib_label
    speedup = hashlib_s / auto_s
    write_report(
        results_dir,
        "kdf_auto_end_to_end",
        f"demo DL netlist private inference: hashlib {hashlib_s:.3f}s, "
        f"auto {auto_s:.3f}s -> {speedup:.2f}x (auto may equal hashlib "
        f"when calibration keeps the loop)",
    )
    record_trajectory(
        "pr5-kdf-auto-end-to-end",
        {
            "pr": 5,
            "hashlib_infer_s": round(hashlib_s, 6),
            "auto_infer_s": round(auto_s, 6),
            "auto_end_to_end_speedup": round(speedup, 3),
            "quick_mode": quick_mode(),
        },
    )
    assert speedup >= AUTO_E2E_FLOOR, (
        f"kdf_backend=auto is {speedup:.2f}x of hashlib end to end "
        f"(floor {AUTO_E2E_FLOOR})"
    )


if __name__ == "__main__":
    import sys

    import pytest

    sys.exit(pytest.main([__file__, "-v"] + sys.argv[1:]))
