"""Table 6: DeepSecure vs CryptoNets on benchmark 1 (per sample).

Reproduces the published comparison — 58.96x without pre-processing,
527.88x with — and exercises the actual HE-simulated CryptoNets pipeline
(accuracy under noise budget, batching behaviour) on a scaled instance.
"""

import numpy as np
import pytest

from repro.baselines import (
    CryptoNetsCostModel,
    CryptoNetsInference,
    HEParams,
    Square,
)
from repro.compile import (
    CRYPTONETS_COMM_BYTES,
    CRYPTONETS_LATENCY_S,
    GCCostModel,
    architecture_counts,
)
from repro.nn import Adam, Dense, Sequential, TrainConfig, Trainer, accuracy
from repro.zoo import PAPER_ARCHITECTURES, PAPER_FOLDS

from _bench_util import write_report


def test_table6_comparison(benchmark, results_dir):
    model = GCCostModel()
    arch = PAPER_ARCHITECTURES["benchmark1"]

    def compute():
        plain = model.breakdown(architecture_counts(arch))
        prep = model.breakdown(
            architecture_counts(arch, mac_fold=PAPER_FOLDS["benchmark1"])
        )
        return plain, prep

    plain, prep = benchmark(compute)
    improvement_plain = CRYPTONETS_LATENCY_S / plain.execution_s
    improvement_prep = CRYPTONETS_LATENCY_S / prep.execution_s
    lines = [
        f"{'framework':<28}{'comm':>12}{'comp s':>10}{'exec s':>10}{'improve':>10}",
        f"{'DeepSecure w/o pre-p':<28}{plain.comm_mb:>10.1f}MB"
        f"{plain.computation_s:>10.2f}{plain.execution_s:>10.2f}"
        f"{improvement_plain:>9.2f}x",
        f"{'DeepSecure w/ pre-p':<28}{prep.comm_mb:>10.1f}MB"
        f"{prep.computation_s:>10.2f}{prep.execution_s:>10.2f}"
        f"{improvement_prep:>9.2f}x",
        f"{'CryptoNets':<28}{CRYPTONETS_COMM_BYTES/1024:>10.0f}KB"
        f"{CRYPTONETS_LATENCY_S:>10.2f}{CRYPTONETS_LATENCY_S:>10.2f}{'-':>10}",
        "paper improvements: 58.96x / 527.88x",
    ]
    write_report(results_dir, "table6_cryptonets", "\n".join(lines))
    assert improvement_plain == pytest.approx(58.96, rel=0.01)
    assert improvement_prep == pytest.approx(527.88, rel=0.02)


def test_cryptonets_pipeline_runs(benchmark, results_dir):
    """A real (simulated-HE) CryptoNets run on a scaled square net:
    correctness with adequate noise budget, collapse without."""
    rng = np.random.default_rng(0)
    x = rng.uniform(-1, 1, size=(800, 16))
    w = rng.normal(size=(16, 4))
    y = (x @ w).argmax(axis=1)
    model = Sequential(
        [Dense(16, use_bias=True), Square(), Dense(4, use_bias=True)],
        input_shape=(16,), seed=1,
    )
    Trainer(model, TrainConfig(epochs=120, batch_size=64),
            optimizer=Adam(0.01)).fit(x, y)
    plain_acc = accuracy(model.predict(x[:256]), y[:256])

    good = CryptoNetsInference(
        model, HEParams(poly_degree=256, initial_noise_bits=250.0)
    )
    tight = CryptoNetsInference(
        model, HEParams(poly_degree=256, initial_noise_bits=55.0)
    )
    good_acc = accuracy(benchmark(lambda: good.predict(x[:256])), y[:256])
    tight_acc = accuracy(tight.predict(x[:256]), y[:256])
    budget = good.min_noise_budget(x[:256])
    text = (
        f"square-net plain accuracy:     {plain_acc:.3f}\n"
        f"HE (budget 250 bits) accuracy: {good_acc:.3f} "
        f"(residual budget {budget:.0f} bits)\n"
        f"HE (budget  55 bits) accuracy: {tight_acc:.3f}  "
        "<- the privacy/utility trade-off (limitation (i))"
    )
    write_report(results_dir, "table6_he_pipeline", text)
    assert good_acc >= plain_acc - 0.06
    assert tight_acc <= 0.6


def test_batching_constant_cost(benchmark, results_dir):
    """Limitation (iv): CryptoNets charges a full batch for one sample."""
    cost = CryptoNetsCostModel()
    benchmark(lambda: cost.delay_seconds(8192))
    assert cost.delay_seconds(1) == cost.delay_seconds(8192)
    assert cost.delay_seconds(8193) == pytest.approx(2 * cost.delay_seconds(1))
    write_report(
        results_dir,
        "table6_batching",
        f"CryptoNets delay: N=1 -> {cost.delay_seconds(1)}s, "
        f"N=8192 -> {cost.delay_seconds(8192)}s, "
        f"N=8193 -> {cost.delay_seconds(8193)}s (per-batch constant)",
    )
