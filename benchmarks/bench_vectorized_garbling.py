"""Vectorized level-scheduled engine vs the scalar gate-at-a-time loop.

The PR 2 tentpole: wire labels as one uint8 plane, free-XOR levels as
single vectorized XORs, and the KDF driven through batched
``label || tweak`` buffers.  This harness measures garble + evaluate
throughput on the compiled Table 3-style DL inference netlist (the
paper's workload shape: adder/multiplier trees plus tanh components)
and records the speedup as an entry of the repo-root perf trajectory
(``BENCH_engine.json``).

Set ``REPRO_BENCH_QUICK=1`` for the single-round CI configuration.
"""

import os
import random
import time

import pytest

from repro.analysis import build_gate_chain
from repro.cli import _demo_service
from repro.gc import Evaluator, FastEvaluator, Garbler, garble_many

from _bench_util import quick_mode, record_trajectory, write_report

#: Combined garble+evaluate speedup the DL circuit must reach (the
#: ISSUE's acceptance bar is 2x; CI boxes get headroom via env).
SPEEDUP_FLOOR = float(os.environ.get("REPRO_BENCH_SPEEDUP_FLOOR", "1.5"))


@pytest.fixture(scope="module")
def dl_service():
    return _demo_service(seed=17)


def _garble_evaluate_once(circuit, client_bits, server_bits, vectorized):
    """One full garble + evaluate pass; returns (garble_s, evaluate_s)."""
    rng = random.Random(99)
    start = time.perf_counter()
    garbler = Garbler(circuit, rng=rng, vectorized=vectorized)
    garbled = garbler.garble()
    garble_s = time.perf_counter() - start
    alice = garbler.input_labels_for(list(circuit.alice_inputs), client_bits)
    bob = [
        garbler.labels.select(w, b)
        for w, b in zip(circuit.bob_inputs, server_bits)
    ]
    evaluator = (FastEvaluator if vectorized else Evaluator)(circuit)
    start = time.perf_counter()
    evaluator.evaluate(garbled, alice, bob)
    return garble_s, time.perf_counter() - start


def _best_of(rounds, fn):
    samples = [fn() for _ in range(rounds)]
    return min(g for g, _ in samples), min(e for _, e in samples)


def test_vectorized_dl_speedup(benchmark, dl_service, results_dir):
    """>= 2x garble+evaluate on the Table 3 DL circuit (ISSUE 2 bar)."""
    service, x = dl_service
    circuit = service.compiled.circuit
    counts = circuit.counts()
    client_bits = service.compiled.client_bits(x[0])
    server_bits = service.compiled.server_bits()
    rounds = 1 if quick_mode() else 3
    # the schedule is built once per circuit and amortized over every
    # request a deployment serves; keep it out of the per-run timing
    circuit.level_schedule()

    scalar_g, scalar_e = _best_of(
        rounds,
        lambda: _garble_evaluate_once(circuit, client_bits, server_bits,
                                      vectorized=False),
    )
    benchmark.pedantic(
        _garble_evaluate_once,
        args=(circuit, client_bits, server_bits, True),
        rounds=1, iterations=1,
    )
    vec_g, vec_e = _best_of(
        rounds,
        lambda: _garble_evaluate_once(circuit, client_bits, server_bits,
                                      vectorized=True),
    )
    speedup = (scalar_g + scalar_e) / (vec_g + vec_e)
    gates_per_s = counts.total / (vec_g + vec_e)
    text = (
        f"Table 3 DL circuit: {counts.xor} XOR + {counts.non_xor} non-XOR\n"
        f"scalar:     garble {scalar_g * 1e3:7.1f} ms | evaluate "
        f"{scalar_e * 1e3:7.1f} ms\n"
        f"vectorized: garble {vec_g * 1e3:7.1f} ms | evaluate "
        f"{vec_e * 1e3:7.1f} ms\n"
        f"garble speedup {scalar_g / vec_g:.2f}x | evaluate speedup "
        f"{scalar_e / vec_e:.2f}x | combined {speedup:.2f}x\n"
        f"vectorized throughput: {gates_per_s / 1e3:.0f}k gates/s"
    )
    write_report(results_dir, "vectorized_garbling", text)
    record_trajectory(
        "pr2-vectorized-garbling-dl",
        {
            "pr": 2,
            "circuit": "demo-dl-10x6x3",
            "n_xor": counts.xor,
            "n_non_xor": counts.non_xor,
            "scalar_garble_s": round(scalar_g, 6),
            "scalar_evaluate_s": round(scalar_e, 6),
            "vectorized_garble_s": round(vec_g, 6),
            "vectorized_evaluate_s": round(vec_e, 6),
            "speedup_garble_evaluate": round(speedup, 3),
            "vectorized_gates_per_s": round(gates_per_s),
            "quick_mode": quick_mode(),
        },
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized engine only {speedup:.2f}x vs scalar "
        f"(floor {SPEEDUP_FLOOR}x)"
    )


def test_batch_garbling_amortization(benchmark, dl_service, results_dir):
    """garble_many(k) shares one schedule pass across pool copies."""
    service, _ = dl_service
    circuit = service.compiled.circuit
    copies = 4 if quick_mode() else 8

    start = time.perf_counter()
    for _ in range(copies):
        Garbler(circuit, rng=random.Random(5)).garble()
    scalar_s = time.perf_counter() - start

    start = time.perf_counter()
    pairs = benchmark.pedantic(
        garble_many, args=(circuit, copies),
        kwargs={"rng": random.Random(5)}, rounds=1, iterations=1,
    )
    batch_s = time.perf_counter() - start
    assert len(pairs) == copies
    speedup = scalar_s / batch_s
    text = (
        f"{copies} pre-garbled copies (pool warm / cut-and-choose):\n"
        f"scalar loop:   {scalar_s:.3f} s ({scalar_s / copies * 1e3:.0f} "
        f"ms/copy)\n"
        f"garble_many:   {batch_s:.3f} s ({batch_s / copies * 1e3:.0f} "
        f"ms/copy)\n"
        f"batch speedup: {speedup:.2f}x"
    )
    write_report(results_dir, "vectorized_batch_garbling", text)
    record_trajectory(
        "pr2-batch-garbling",
        {
            "pr": 2,
            "circuit": "demo-dl-10x6x3",
            "copies": copies,
            "scalar_s": round(scalar_s, 6),
            "garble_many_s": round(batch_s, 6),
            "speedup": round(speedup, 3),
            "quick_mode": quick_mode(),
        },
    )
    assert speedup >= 1.0


def test_worst_case_chain_no_collapse(results_dir):
    """A fully sequential AND chain (1 gate/level) — the hybrid's floor.

    Level scheduling cannot win here (no width anywhere); the narrow-
    level scalar fallback must keep the engine within ~2x of the
    reference instead of collapsing by an order of magnitude.
    """
    n = 2000 if quick_mode() else 10000
    circuit = build_gate_chain(n, "and")
    circuit.level_schedule()  # one-time, amortized in serving
    a_bits = [1] * circuit.n_alice
    b_bits = [1] * circuit.n_bob
    sg, se = _garble_evaluate_once(circuit, a_bits, b_bits, vectorized=False)
    vg, ve = _garble_evaluate_once(circuit, a_bits, b_bits, vectorized=True)
    ratio = (sg + se) / (vg + ve)
    text = (
        f"AND chain ({n} gates, depth {n}): scalar {(sg + se) * 1e3:.0f} ms, "
        f"hybrid {(vg + ve) * 1e3:.0f} ms ({ratio:.2f}x)"
    )
    write_report(results_dir, "vectorized_worst_case_chain", text)
    assert ratio >= 0.5, "hybrid fallback regressed the sequential floor"
