"""Table 2's scaling law, verified with live garbling.

The paper's cost model says GC work is linear in the MAC count
``sum n(l) n(l+1)`` (Table 2).  This harness compiles dense layers of
growing width, garbles + evaluates them for real, and checks that both
the table traffic and the wall time scale linearly in MACs (within
noise), i.e. the analytic model's *shape* is confirmed by the
implementation it models.
"""

import random
import time

import numpy as np

from repro.circuits import FixedPointFormat
from repro.compile import CompileOptions, compile_model
from repro.gc import execute
from repro.gc.ot import TEST_GROUP_512
from repro.nn import Dense, QuantizedModel, Sequential

from _bench_util import write_report

FMT = FixedPointFormat(2, 6)


def _compiled_layer(in_dim, out_dim, seed=0):
    model = Sequential([Dense(out_dim)], input_shape=(in_dim,), seed=seed)
    quantized = QuantizedModel(model, FMT)
    return compile_model(
        quantized, CompileOptions(activation="exact", output="logits")
    )


def test_tables_linear_in_macs(benchmark, results_dir):
    sizes = [(4, 2), (8, 2), (8, 4), (16, 4)]
    rows = []

    def measure():
        out = []
        for in_dim, out_dim in sizes:
            compiled = _compiled_layer(in_dim, out_dim)
            macs = in_dim * out_dim
            out.append((macs, compiled.circuit.counts().non_xor))
        return out

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    per_mac = [tables / macs for macs, tables in rows]
    spread = (max(per_mac) - min(per_mac)) / min(per_mac)
    lines = [f"{'MACs':>6}{'tables':>9}{'tables/MAC':>12}"]
    for (macs, tables), ratio in zip(rows, per_mac):
        lines.append(f"{macs:>6}{tables:>9}{ratio:>12.1f}")
    lines.append(f"per-MAC spread: {spread:.1%} (Table 2 predicts linear)")
    write_report(results_dir, "scaling_tables", "\n".join(lines))
    assert spread < 0.30  # near-linear; saturation/argmax are the offsets


def test_wall_time_tracks_tables(benchmark, results_dir):
    rng = np.random.default_rng(1)
    points = []
    for in_dim in (4, 8, 16):
        compiled = _compiled_layer(in_dim, 2, seed=1)
        sample = rng.uniform(-1, 1, size=in_dim)
        start = time.perf_counter()
        result = execute(
            compiled.circuit,
            compiled.client_bits(sample),
            compiled.server_bits(),
            ot_group=TEST_GROUP_512,
            rng=random.Random(in_dim),
        )
        elapsed = time.perf_counter() - start
        points.append((result.n_non_xor, elapsed))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [f"{'tables':>8}{'wall s':>9}{'us/table':>10}"]
    for tables, elapsed in points:
        lines.append(f"{tables:>8}{elapsed:>9.3f}{1e6 * elapsed / tables:>10.1f}")
    write_report(results_dir, "scaling_walltime", "\n".join(lines))
    # 4x the tables should cost roughly 4x the time (within generous noise
    # from the per-run OT setup)
    small_rate = points[0][1] / points[0][0]
    large_rate = points[-1][1] / points[-1][0]
    assert 0.2 <= large_rate / small_rate <= 3.0
