"""Sec. 4.2's speed/accuracy trade-off across activation variants.

"We provide different circuits for computing DL non-linear activation
functions to offer speed/accuracy trade-off.  One can choose each
circuit according to her application criteria."  This harness quantifies
that choice end to end: for each Tanh variant, the gate cost of a full
compiled model and the classification agreement with the float model.
"""

import numpy as np
import pytest

from repro.circuits import FixedPointFormat, simulate
from repro.compile import CompileOptions, compile_model
from repro.nn import Dense, QuantizedModel, Sequential, Tanh, TrainConfig, Trainer

from _bench_util import write_report

FMT = FixedPointFormat(3, 12)


@pytest.fixture(scope="module")
def trained():
    rng = np.random.default_rng(3)
    x = rng.uniform(-1, 1, size=(400, 10))
    w = rng.normal(size=(10, 3))
    y = (x @ w).argmax(axis=1)
    model = Sequential([Dense(6), Tanh(), Dense(3)], input_shape=(10,), seed=1)
    Trainer(model, TrainConfig(epochs=20, learning_rate=0.2)).fit(x, y)
    return model, x


def test_variant_tradeoff(benchmark, trained, results_dir):
    model, x = trained
    float_labels = model.predict(x[:60])

    def evaluate_variant(activation):
        variant = "exact" if activation in ("exact", "truncated", "piecewise") else "cordic"
        quantized = QuantizedModel(model, FMT, activation_variant=variant)
        compiled = compile_model(
            quantized, CompileOptions(activation=activation, output="argmax")
        )
        server = compiled.server_bits()
        agree = 0
        for k in range(60):
            bits = simulate(compiled.circuit, compiled.client_bits(x[k]), server)
            agree += int(compiled.decode_output(bits) == float_labels[k])
        return compiled.circuit.counts(), agree / 60

    rows = {}
    for activation in ("piecewise", "truncated", "cordic"):
        rows[activation] = evaluate_variant(activation)
    benchmark.pedantic(
        lambda: evaluate_variant("piecewise"), rounds=1, iterations=1
    )

    lines = [f"{'variant':<12}{'non-XOR':>10}{'agreement with float':>24}"]
    for name, (counts, agreement) in rows.items():
        lines.append(f"{name:<12}{counts.non_xor:>10}{agreement:>24.3f}")
    write_report(results_dir, "activation_tradeoff", "\n".join(lines))

    # cheaper variants cost fewer tables...
    assert rows["piecewise"][0].non_xor < rows["cordic"][0].non_xor
    # ...and every variant keeps high label agreement on this task
    for name, (_, agreement) in rows.items():
        assert agreement >= 0.9, name
