"""PR 3 throughput tier: parallel KDF, batched evaluation, fused narrow
levels and the vectorized folded path.

Four measurements, one per tentpole piece, each recorded as a ``pr: 3``
entry of the repo-root perf trajectory (``BENCH_engine.json``):

* ``pr3-parallel-kdf`` — ``ParallelKDF`` worker scaling on a wide DL
  garble (thread-split ``hash_many`` row blocks);
* ``pr3-evaluate-many`` — ``FastEvaluator.evaluate_many(8)`` vs 8
  sequential vectorized evaluations (one schedule walk for the batch;
  narrow levels become wide at ``k * m``);
* ``pr3-fused-narrow-levels`` — the fused multi-level scalar runner on a
  ripple-chain circuit vs per-level dispatch;
* ``pr3-folded-vectorized`` — ``SequentialSession`` with the carried
  label plane (and the Fig. 5 garble/evaluate overlap) vs the scalar
  reference on the folded MAC core.

Set ``REPRO_BENCH_QUICK=1`` for the single-round CI configuration.
Speedup floors are env-tunable (CI runners get relaxed bars); the
parallel-KDF floor only applies on hosts with >= 4 cores.
"""

import os
import random
import time

import pytest

from repro.analysis import build_gate_chain
from repro.circuits import FixedPointFormat, bits_from_int
from repro.cli import _demo_service
from repro.compile import folded_mac_cell
from repro.gc import (
    Evaluator,
    FastEvaluator,
    FastGarbler,
    HashKDF,
    ParallelKDF,
    SequentialSession,
    garble_many,
)
from repro.gc.fastgarble import garble_copies
from repro.gc.labels import ArrayLabelStore
from repro.gc.ot import TEST_GROUP_512

from _bench_util import quick_mode, record_trajectory, write_report

#: evaluate_many(8) vs 8 sequential evaluations (ISSUE 3 bar: 1.8x).
BATCH_EVAL_FLOOR = float(
    os.environ.get("REPRO_BENCH_BATCH_EVAL_FLOOR", "1.8")
)
#: secondary bar vs the already-vectorized single-request evaluator.
BATCH_EVAL_VS_FAST_FLOOR = float(
    os.environ.get("REPRO_BENCH_BATCH_EVAL_VS_FAST_FLOOR", "1.1")
)
#: kdf_workers=4 vs 1 on a wide garble (ISSUE 3 bar: 1.5x, needs cores).
KDF_FLOOR = float(os.environ.get("REPRO_BENCH_KDF_FLOOR", "1.5"))
#: fused narrow runner vs per-level dispatch (must never lose).
FUSE_FLOOR = float(os.environ.get("REPRO_BENCH_FUSE_FLOOR", "1.0"))
#: vectorized folded session vs the scalar reference.  The MAC core is
#: mostly narrow levels, so the engine win is modest (~1.1x) and noisy
#: single-core hosts can flip a strict 1.0 bar; the recorded trajectory
#: number plus the CI regression comparator carry the real signal.
FOLDED_FLOOR = float(os.environ.get("REPRO_BENCH_FOLDED_FLOOR", "0.9"))

FMT = FixedPointFormat(2, 6)


@pytest.fixture(scope="module")
def dl_service():
    return _demo_service(seed=17)


def _best(rounds, fn):
    return min(fn() for _ in range(rounds))


def test_parallel_kdf_garble_scaling(dl_service, results_dir):
    """Thread-split hash_many across a worker pool (tentpole piece 1)."""
    service, _ = dl_service
    circuit = service.compiled.circuit
    circuit.level_schedule()
    rounds = 1 if quick_mode() else 3
    cores = os.cpu_count() or 1

    def garble_with(kdf):
        start = time.perf_counter()
        FastGarbler(circuit, kdf=kdf, rng=random.Random(31)).garble()
        return time.perf_counter() - start

    single_s = _best(rounds, lambda: garble_with(HashKDF()))
    parallel = ParallelKDF(HashKDF(), workers=4)
    parallel_s = _best(rounds, lambda: garble_with(parallel))
    parallel.close()
    speedup = single_s / parallel_s
    text = (
        f"wide DL garble ({circuit.counts().non_xor} tables), "
        f"{cores} host cores:\n"
        f"kdf_workers=1: {single_s * 1e3:7.1f} ms\n"
        f"kdf_workers=4: {parallel_s * 1e3:7.1f} ms ({speedup:.2f}x)"
    )
    write_report(results_dir, "parallel_kdf", text)
    record_trajectory(
        "pr3-parallel-kdf",
        {
            "pr": 3,
            "circuit": "demo-dl-10x6x3",
            "host_cores": cores,
            "kdf_workers": 4,
            "single_worker_garble_s": round(single_s, 6),
            "parallel_garble_s": round(parallel_s, 6),
            "kdf_speedup": round(speedup, 3),
            "quick_mode": quick_mode(),
        },
    )
    if cores >= 4:
        assert speedup >= KDF_FLOOR, (
            f"ParallelKDF only {speedup:.2f}x on {cores} cores "
            f"(floor {KDF_FLOOR}x)"
        )
    else:
        # on starved hosts the wrapper must at least not collapse
        assert speedup >= 0.5


def test_evaluate_many_throughput(dl_service, results_dir):
    """One schedule walk for 8 concurrent requests (tentpole piece 2).

    Two baselines, both recorded: 8 sequential scalar ``Evaluator``
    passes (the gate-at-a-time reference — the 1.8x acceptance bar) and
    8 sequential ``FastEvaluator`` passes (the already-vectorized
    single-request path).  Against the latter the win is bounded by the
    SHA-256 oracle floor — per-gate hash count is identical — so the
    batch gains only the per-request dispatch, plane setup and
    narrow-level scalar work it amortizes.
    """
    service, x = dl_service
    circuit = service.compiled.circuit
    circuit.level_schedule()
    k = 8
    client_bits = service.compiled.client_bits(x[0])
    server_bits = service.compiled.server_bits()
    pairs = garble_many(circuit, k, rng=random.Random(41))
    garbleds = [g for _, g in pairs]
    alices = [
        garbler.input_labels_for(list(circuit.alice_inputs), client_bits)
        for garbler, _ in pairs
    ]
    bobs = [
        [garbler.labels.select(w, b)
         for w, b in zip(circuit.bob_inputs, server_bits)]
        for garbler, _ in pairs
    ]
    evaluator = FastEvaluator(circuit)
    scalar_evaluator = Evaluator(circuit)
    rounds = 1 if quick_mode() else 3

    def scalar():
        start = time.perf_counter()
        for i in range(k):
            scalar_evaluator.evaluate(garbleds[i], alices[i], bobs[i])
        return time.perf_counter() - start

    def sequential():
        start = time.perf_counter()
        planes = [
            evaluator.evaluate(garbleds[i], alices[i], bobs[i])
            for i in range(k)
        ]
        return time.perf_counter() - start, planes

    def batched():
        start = time.perf_counter()
        planes = evaluator.evaluate_many(garbleds, alices, bobs)
        return time.perf_counter() - start, planes

    scalar_s = min(scalar() for _ in range(rounds))
    seq_s = min(sequential()[0] for _ in range(rounds))
    batch_s = min(batched()[0] for _ in range(rounds))
    # same bytes either way — the speedup is free of correctness risk
    ref = sequential()[1]
    got = batched()[1]
    for i in range(k):
        outs_ref = [ref[i][w] for w in circuit.outputs]
        outs_got = [got[i][w] for w in circuit.outputs]
        assert outs_ref == outs_got

    speedup = scalar_s / batch_s
    speedup_vs_fast = seq_s / batch_s
    text = (
        f"{k} concurrent requests on the DL netlist "
        f"({circuit.counts().non_xor} tables each):\n"
        f"8x scalar evaluate:     {scalar_s:.3f} s "
        f"({scalar_s / k * 1e3:.0f} ms/req)\n"
        f"8x vectorized evaluate: {seq_s:.3f} s "
        f"({seq_s / k * 1e3:.0f} ms/req)\n"
        f"evaluate_many(8):       {batch_s:.3f} s "
        f"({batch_s / k * 1e3:.0f} ms/req)\n"
        f"batch speedup: {speedup:.2f}x vs scalar | "
        f"{speedup_vs_fast:.2f}x vs vectorized"
    )
    write_report(results_dir, "evaluate_many", text)
    record_trajectory(
        "pr3-evaluate-many",
        {
            "pr": 3,
            "circuit": "demo-dl-10x6x3",
            "requests": k,
            "scalar_evaluate_s": round(scalar_s, 6),
            "sequential_evaluate_s": round(seq_s, 6),
            "evaluate_many_s": round(batch_s, 6),
            "batch_eval_speedup": round(speedup, 3),
            "batch_eval_speedup_vs_vectorized": round(speedup_vs_fast, 3),
            "quick_mode": quick_mode(),
        },
    )
    assert speedup >= BATCH_EVAL_FLOOR, (
        f"evaluate_many({k}) only {speedup:.2f}x vs scalar evaluate "
        f"(floor {BATCH_EVAL_FLOOR}x)"
    )
    assert speedup_vs_fast >= BATCH_EVAL_VS_FAST_FLOOR, (
        f"evaluate_many({k}) only {speedup_vs_fast:.2f}x vs the "
        f"vectorized single-request path "
        f"(floor {BATCH_EVAL_VS_FAST_FLOOR}x)"
    )


def test_fused_narrow_levels(results_dir):
    """Consecutive narrow levels as one flat run (tentpole piece 3)."""
    n = 1500 if quick_mode() else 6000
    circuit = build_gate_chain(n, "and")
    circuit.level_schedule()
    kdf = HashKDF()
    a_bits = [1] * circuit.n_alice
    rounds = 1 if quick_mode() else 3

    def garble_evaluate(fuse):
        rng = random.Random(77)
        start = time.perf_counter()
        store = ArrayLabelStore(circuit.n_wires, rng=rng)
        garbled = garble_copies(circuit, kdf, [store], fuse=fuse)[0]
        garble_s = time.perf_counter() - start
        alice = [store.select(w, 1) for w in circuit.alice_inputs]
        bob = [store.select(w, 1) for w in circuit.bob_inputs]
        evaluator = FastEvaluator(circuit, kdf=kdf)
        start = time.perf_counter()
        plane = evaluator.evaluate(garbled, alice, bob, fuse=fuse)
        return garble_s, time.perf_counter() - start, garbled, plane

    unfused_g = min(
        sum(garble_evaluate(False)[:2]) for _ in range(rounds)
    )
    fused_g = min(sum(garble_evaluate(True)[:2]) for _ in range(rounds))
    # bit-exactness of the fusion on this worst-case shape
    _, _, g_ref, p_ref = garble_evaluate(False)
    _, _, g_fused, p_fused = garble_evaluate(True)
    assert g_ref.tables_bytes() == g_fused.tables_bytes()
    assert p_ref.as_dict() == p_fused.as_dict()

    speedup = unfused_g / fused_g
    text = (
        f"AND chain ({n} gates, depth {n}) garble+evaluate:\n"
        f"per-level dispatch: {unfused_g * 1e3:7.1f} ms\n"
        f"fused runner:       {fused_g * 1e3:7.1f} ms ({speedup:.2f}x)"
    )
    write_report(results_dir, "fused_narrow_levels", text)
    record_trajectory(
        "pr3-fused-narrow-levels",
        {
            "pr": 3,
            "circuit": f"and-chain-{n}",
            "unfused_s": round(unfused_g, 6),
            "fused_s": round(fused_g, 6),
            "fuse_speedup": round(speedup, 3),
            "quick_mode": quick_mode(),
        },
    )
    assert speedup >= FUSE_FLOOR, (
        f"fused narrow runner {speedup:.2f}x (floor {FUSE_FLOOR}x)"
    )


def test_folded_vectorized_session(results_dir):
    """Carried label plane + Fig. 5 overlap (tentpole piece 4).

    Session wall time is OT-dominated (IKNP base OTs per cycle), so the
    engine comparison uses the session's own per-cycle garble/evaluate
    clocks; wall times are recorded alongside for the pipeline overlap.
    """
    fmt = FixedPointFormat(3, 12)  # the paper's 1.3.12 MAC datapath
    cell = folded_mac_cell(fmt, fan_in=16)
    cycles = 6 if quick_mode() else 16
    width = cell.core.n_alice
    alice = [bits_from_int(3 + i, width) for i in range(cycles)]
    bob = [bits_from_int(2 * i + 1, cell.core.n_bob) for i in range(cycles)]
    rounds = 1 if quick_mode() else 3

    def run(vectorized, pipelined=False):
        session = SequentialSession(
            cell, ot_group=TEST_GROUP_512, rng=random.Random(9),
            vectorized=vectorized, pipelined=pipelined,
        )
        start = time.perf_counter()
        result = session.run(alice, bob, cycles=cycles)
        wall = time.perf_counter() - start
        engine = sum(result.garble_times) + sum(result.evaluate_times)
        return wall, engine, result

    runs_scalar = [run(False) for _ in range(rounds)]
    runs_vector = [run(True) for _ in range(rounds)]
    runs_pipe = [run(True, True) for _ in range(rounds)]
    scalar_engine = min(r[1] for r in runs_scalar)
    vector_engine = min(r[1] for r in runs_vector)
    scalar_wall = min(r[0] for r in runs_scalar)
    vector_wall = min(r[0] for r in runs_vector)
    pipe_wall = min(r[0] for r in runs_pipe)
    # bit-exactness across all three modes (same rng stream)
    ref, vec, pipe = runs_scalar[0][2], runs_vector[0][2], runs_pipe[0][2]
    assert ref.outputs_per_cycle == vec.outputs_per_cycle
    assert ref.outputs_per_cycle == pipe.outputs_per_cycle
    assert ref.comm == vec.comm == pipe.comm

    speedup = scalar_engine / vector_engine
    text = (
        f"folded MAC core {fmt.describe()}, {cycles} cycles "
        f"({cell.core.counts().non_xor} tables/cycle):\n"
        f"scalar garble+evaluate:     {scalar_engine:.3f} s "
        f"(wall {scalar_wall:.3f} s)\n"
        f"vectorized garble+evaluate: {vector_engine:.3f} s "
        f"(wall {vector_wall:.3f} s) — {speedup:.2f}x\n"
        f"+ Fig.5 pipeline wall:      {pipe_wall:.3f} s"
    )
    write_report(results_dir, "folded_vectorized", text)
    record_trajectory(
        "pr3-folded-vectorized",
        {
            "pr": 3,
            "circuit": f"folded-mac-{fmt.describe()}",
            "cycles": cycles,
            "scalar_engine_s": round(scalar_engine, 6),
            "vectorized_engine_s": round(vector_engine, 6),
            "scalar_wall_s": round(scalar_wall, 6),
            "vectorized_wall_s": round(vector_wall, 6),
            "pipelined_wall_s": round(pipe_wall, 6),
            "folded_speedup": round(speedup, 3),
            "quick_mode": quick_mode(),
        },
    )
    assert speedup >= FOLDED_FLOOR, (
        f"vectorized folded session {speedup:.2f}x (floor {FOLDED_FLOOR}x)"
    )
