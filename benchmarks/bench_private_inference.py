"""End-to-end private inference: the operational benchmark.

Garbles, transfers, obliviously evaluates and merges a real compiled
model — the full Fig. 3 flow — and reports wall time, per-phase split and
communication.  Also covers the outsourced (Fig. 4) mode and asserts its
overhead is free-XOR only (Sec. 3.3).
"""

import random

import numpy as np
import pytest

from repro.circuits import FixedPointFormat
from repro.compile import CompileOptions, compile_model
from repro.gc import OutsourcedSession, execute, outsource_circuit
from repro.gc.ot import TEST_GROUP_512
from repro.nn import Dense, QuantizedModel, Sequential, Tanh, TrainConfig, Trainer

from _bench_util import write_report

FMT9 = FixedPointFormat(2, 6)


@pytest.fixture(scope="module")
def compiled_tiny():
    rng = np.random.default_rng(7)
    x = rng.uniform(-1, 1, size=(500, 12))
    w = rng.normal(size=(12, 4))
    y = (x @ w).argmax(axis=1)
    model = Sequential([Dense(8), Tanh(), Dense(4)], input_shape=(12,), seed=1)
    Trainer(model, TrainConfig(epochs=25, learning_rate=0.2)).fit(x, y)
    quantized = QuantizedModel(model, FMT9, activation_variant="exact")
    compiled = compile_model(
        quantized, CompileOptions(activation="exact", output="argmax")
    )
    return compiled, quantized, x


def test_private_inference_wall_time(benchmark, compiled_tiny, results_dir):
    compiled, quantized, x = compiled_tiny
    server_bits = compiled.server_bits()
    rng = random.Random(0)

    def infer():
        return execute(
            compiled.circuit,
            compiled.client_bits(x[0]),
            server_bits,
            ot_group=TEST_GROUP_512,
            rng=rng,
        )

    result = benchmark.pedantic(infer, rounds=3, iterations=1)
    label = compiled.decode_output(result.outputs)
    assert label == int(quantized.predict(x[0][None])[0])
    counts = compiled.circuit.counts()
    phases = ", ".join(f"{k}={v*1e3:.0f}ms" for k, v in result.times.items())
    text = (
        f"model 12-8-4 tanh (1.2.6 fixed point), argmax output\n"
        f"circuit: {counts.xor} XOR + {counts.non_xor} non-XOR gates\n"
        f"total comm: {result.total_comm_bytes/1e6:.2f} MB "
        f"(tables {result.comm['tables']/1e6:.2f} MB)\n"
        f"phases: {phases}\n"
        f"single-thread wall time: {result.total_time:.2f} s"
    )
    write_report(results_dir, "private_inference", text)


def test_inference_agreement_over_batch(benchmark, compiled_tiny):
    """Simulated-circuit labels agree with the quantized reference for a
    batch (full garbling per sample is covered above)."""
    from repro.circuits import simulate

    compiled, quantized, x = compiled_tiny
    server_bits = compiled.server_bits()
    benchmark.pedantic(
        lambda: simulate(
            compiled.circuit, compiled.client_bits(x[0]), server_bits
        ),
        rounds=1, iterations=1,
    )
    for k in range(12):
        bits = simulate(compiled.circuit, compiled.client_bits(x[k]), server_bits)
        assert compiled.decode_output(bits) == int(
            quantized.predict(x[k][None])[0]
        )


def test_outsourcing_overhead(benchmark, compiled_tiny, results_dir):
    """Sec. 3.3: outsourcing adds one XOR layer — zero garbled tables."""
    compiled, quantized, x = compiled_tiny
    transformed = benchmark(lambda: outsource_circuit(compiled.circuit))
    base = compiled.circuit.counts()
    out = transformed.counts()
    text = (
        f"direct circuit:    {base.xor} XOR + {base.non_xor} non-XOR\n"
        f"outsourced:        {out.xor} XOR + {out.non_xor} non-XOR\n"
        f"overhead: +{out.xor - base.xor} XOR (free), +{out.non_xor - base.non_xor} "
        "garbled tables (paper: 'almost free of charge')"
    )
    write_report(results_dir, "outsourcing_overhead", text)
    assert out.non_xor == base.non_xor
    assert out.xor - base.xor <= compiled.circuit.n_alice


def test_outsourced_inference_correct(benchmark, compiled_tiny):
    compiled, quantized, x = compiled_tiny
    session = OutsourcedSession(
        compiled.circuit, ot_group=TEST_GROUP_512, rng=random.Random(3)
    )
    result = benchmark.pedantic(
        lambda: session.run(compiled.client_bits(x[1]), compiled.server_bits()),
        rounds=1, iterations=1,
    )
    assert compiled.decode_output(result.outputs) == int(
        quantized.predict(x[1][None])[0]
    )
