"""Engine serving benchmarks: offline/online split and concurrent load.

Measures what the unified execution API buys a deployment:

* **pre-garbling** (paper Sec. 3: garbling is input-independent) — the
  online critical path of a pooled request drops the whole garble phase
  vs. a cold request on the same circuit;
* **concurrent serving** — `infer_many` overlaps independent protocol
  runs on a thread pool;
* **backend inventory** — every registered backend serves the same
  compiled circuit and returns the same label.
"""

import pytest

from repro.cli import _demo_service
from repro.engine import available_backends

from _bench_util import record_trajectory, write_report


@pytest.fixture(scope="module")
def service_and_data():
    # the CLI's demo service: same model, dataset and config as the
    # `infer`/`serve` subcommands, so benchmark results and CLI output
    # describe the same deployment
    return _demo_service(history_limit=64, seed=11)


def test_offline_online_split(benchmark, service_and_data, results_dir):
    """Pooled requests pay no garbling online (the Sec. 3 split)."""
    service, x = service_and_data
    cold = service.infer(x[0])

    service.prepare(3)

    def pooled():
        if len(service.pool) == 0:
            service.prepare(1)
        return service.infer(x[0])

    warm = benchmark.pedantic(pooled, rounds=3, iterations=1)
    assert warm.pregarbled and not cold.pregarbled
    assert warm.times["garble"] < cold.times["garble"]
    assert warm.wall_seconds < cold.wall_seconds
    text = (
        f"cold online latency:   {cold.wall_seconds:.3f} s "
        f"(garble {cold.times['garble']:.3f} s on the critical path)\n"
        f"pooled online latency: {warm.wall_seconds:.3f} s "
        f"(garble {warm.times['garble'] * 1e3:.2f} ms)\n"
        f"online speedup: {cold.wall_seconds / warm.wall_seconds:.2f}x"
    )
    write_report(results_dir, "engine_offline_online", text)
    record_trajectory(
        "pr2-offline-online-split",
        {
            "pr": 2,
            "cold_online_s": round(cold.wall_seconds, 6),
            "pooled_online_s": round(warm.wall_seconds, 6),
            "online_speedup": round(
                cold.wall_seconds / warm.wall_seconds, 3
            ),
        },
    )


def test_concurrent_serving_throughput(benchmark, service_and_data, results_dir):
    """infer_many overlaps independent protocol runs across threads.

    Both runs serve from a freshly warmed pool so the reported ratio
    isolates the threading gain from the (separately benchmarked)
    pooling gain.
    """
    import time

    service, x = service_and_data
    requests = list(x[:4])

    service.prepare(len(requests))
    start = time.perf_counter()
    sequential = service.infer_many(requests, max_workers=1)
    seq_wall = time.perf_counter() - start

    service.prepare(len(requests))
    start = time.perf_counter()
    concurrent = benchmark.pedantic(
        lambda: service.infer_many(requests, max_workers=4),
        rounds=1, iterations=1,
    )
    conc_wall = time.perf_counter() - start

    assert [r.label for r in concurrent] == [r.label for r in sequential]
    assert all(r.pregarbled for r in sequential + concurrent)
    text = (
        f"4 pooled requests sequential: {seq_wall:.2f} s "
        f"({len(requests) / seq_wall:.2f} req/s)\n"
        f"4 pooled requests, 4 workers: {conc_wall:.2f} s "
        f"({len(requests) / conc_wall:.2f} req/s)\n"
        f"threading wall-clock speedup: {seq_wall / conc_wall:.2f}x\n"
        "(in-process runs are GIL-bound pure-Python crypto, so ~1x here;\n"
        " the thread pool pays off when requests wait on network/OT I/O)"
    )
    write_report(results_dir, "engine_concurrent_serving", text)


def test_backend_inventory(benchmark, service_and_data, results_dir):
    """Every registered backend serves the same request identically."""
    service, x = service_and_data
    sample = x[0]
    expected = service.cleartext_label(sample)
    lines = [f"{'backend':<16}{'label':>6}{'comm MB':>10}{'online s':>10}"]

    def run_all():
        rows = []
        for name in available_backends():
            record = service.infer(sample, backend=name)
            rows.append(record)
        return rows

    records = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for record in records:
        assert record.label == expected
        lines.append(
            f"{record.backend:<16}{record.label:>6}"
            f"{record.comm_bytes / 1e6:>10.2f}{record.wall_seconds:>10.2f}"
        )
    write_report(results_dir, "engine_backends", "\n".join(lines))
