"""Sec. 2.3 ablation: the garbling-scheme optimization ladder, measured.

The paper stands on classic point-and-permute -> row reduction (GRR3)
-> half-gates (plus free-XOR throughout).  This harness garbles the same
multiplier netlist under all three schemes and reports bytes/gate and
garbling throughput — turning the cited history into numbers.
"""

import random

import pytest

from repro.circuits import CircuitBuilder, FixedPointFormat
from repro.circuits.arith import multiply_fixed
from repro.gc import Garbler, evaluate_rows, garble_rows

from _bench_util import write_report

FMT = FixedPointFormat(3, 12)


@pytest.fixture(scope="module")
def multiplier():
    bld = CircuitBuilder()
    a = bld.add_alice_inputs(FMT.width)
    b = bld.add_bob_inputs(FMT.width)
    bld.mark_output_bus(multiply_fixed(bld, a, b, FMT.frac_bits))
    return bld.build()


def test_scheme_ladder(benchmark, multiplier, results_dir):
    non_xor = multiplier.counts().non_xor

    def measure():
        rows = {}
        _, classic = garble_rows(multiplier, "classic", rng=random.Random(1))
        rows["classic (4 rows)"] = classic.size_bytes
        _, grr3 = garble_rows(multiplier, "grr3", rng=random.Random(1))
        rows["GRR3 (3 rows)"] = grr3.size_bytes
        half = Garbler(multiplier, rng=random.Random(1)).garble()
        rows["half-gates (2 rows)"] = half.size_bytes
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    classic = rows["classic (4 rows)"]
    lines = [f"16-bit fixed multiplier: {non_xor} non-XOR gates",
             f"{'scheme':<22}{'bytes':>9}{'B/gate':>8}{'vs classic':>12}"]
    for name, size in rows.items():
        lines.append(
            f"{name:<22}{size:>9}{size / non_xor:>8.0f}"
            f"{size / classic:>11.0%}"
        )
    lines.append("paper Sec. 2.3: row reduction ~-25%, half-gates -33% more")
    write_report(results_dir, "garbling_schemes", "\n".join(lines))
    assert rows["GRR3 (3 rows)"] == pytest.approx(0.75 * classic)
    assert rows["half-gates (2 rows)"] == pytest.approx(0.5 * classic)


def test_all_schemes_agree(benchmark, multiplier):
    from repro.circuits import bits_from_int, simulate

    a_bits = bits_from_int(3 * 4096 & 0xFFFF, 16)   # 3.0
    b_bits = bits_from_int(2 * 4096 & 0xFFFF, 16)   # 2.0
    expected = benchmark(lambda: simulate(multiplier, a_bits, b_bits))
    for scheme in ("classic", "grr3"):
        store, garbled = garble_rows(multiplier, scheme, rng=random.Random(2))
        alice = [store.select(w, v)
                 for w, v in zip(multiplier.alice_inputs, a_bits)]
        bob = [store.select(w, v)
               for w, v in zip(multiplier.bob_inputs, b_bits)]
        labels = evaluate_rows(multiplier, garbled, alice, bob)
        assert store.decode_bits(multiplier.outputs, labels) == expected
