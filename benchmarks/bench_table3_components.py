"""Table 3: GC-optimized circuit components (XOR / non-XOR / error).

Regenerates the component inventory — including the full-domain 16-bit
LUT variants — and compares against the published counts.  Notable
reproduction finding: our mux-tree LUTs with structural hashing come in
*far below* the paper's LUT rows (monotone tables deduplicate massively),
while MULT/DIV land within 1.5-2.5x.
"""

import pytest

from repro.circuits import FixedPointFormat
from repro.compile import PAPER_TABLE3
from repro.synthesis import component_inventory, render_table3

from _bench_util import write_report


@pytest.fixture(scope="module")
def inventory():
    return component_inventory(
        FixedPointFormat(3, 12), include_full_luts=True, measure_errors=False
    )


def test_table3_report(benchmark, inventory, results_dir):
    rows = benchmark.pedantic(
        lambda: component_inventory(FixedPointFormat(3, 12)),
        rounds=1, iterations=1,
    )
    write_report(results_dir, "table3_components", render_table3(inventory))


def test_add_and_relu_match_paper_exactly(benchmark, inventory):
    by_name = benchmark(lambda: {r.name: r for r in inventory})
    assert by_name["ADD"].non_xor == PAPER_TABLE3["ADD"][1]
    assert by_name["ReLu"].non_xor == PAPER_TABLE3["ReLu"][1]


def test_arithmetic_within_3x_of_paper(benchmark, inventory):
    by_name = benchmark(lambda: {r.name: r for r in inventory})
    for name in ("MULT", "DIV", "TanhCORDIC", "SigmoidCORDIC",
                 "Tanh2.10.12", "Sigmoid3.10.12", "TanhPL", "SigmoidPLAN"):
        ratio = by_name[name].non_xor / PAPER_TABLE3[name][1]
        assert 0.3 <= ratio <= 3.0, (name, ratio)


def test_full_luts_beat_paper(benchmark, inventory):
    benchmark(lambda: {r.name: r for r in inventory})
    """Monotone-table dedup: our LUTs need far fewer garbled tables."""
    by_name = {r.name: r for r in inventory}
    assert by_name["TanhLUT"].non_xor < PAPER_TABLE3["TanhLUT"][1] / 10
    assert by_name["SigmoidLUT"].non_xor < PAPER_TABLE3["SigmoidLUT"][1] / 10


def test_activation_errors_measured(benchmark, results_dir):
    """The Table 3 'error' column, measured by simulating each variant."""
    from repro.synthesis import measure_activation_error

    fmt = FixedPointFormat(3, 12)
    rows = []
    expectations = {
        "TanhCORDIC": 4 * fmt.resolution,
        "SigmoidCORDIC": 3 * fmt.resolution,
        "Tanh2.10.12": 0.002,
        "Sigmoid3.10.12": 0.002,
        "TanhPL": 0.007,
        "SigmoidPLAN": 0.021,
    }

    def run():
        measured = {}
        for name, bound in expectations.items():
            error = measure_activation_error(name, fmt, samples=160)
            measured[name] = error
            assert error <= bound, (name, error, bound)
        return measured

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'variant':<16}{'max error':>12}  paper"]
    for name, error in measured.items():
        paper = PAPER_TABLE3[name][2]
        lines.append(f"{name:<16}{error:>12.2e}  {paper}")
    write_report(results_dir, "table3_errors", "\n".join(lines))
