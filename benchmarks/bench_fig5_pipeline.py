"""Figure 5: the sequential-GC timing diagram.

Runs a real sequential garbled execution, measures per-cycle garble and
evaluate durations, builds the overlapped schedule and renders the Gantt
chart.  Asserts the figure's qualitative claims: phases overlap, and the
total execution time is strictly less than the sum of both parties'
times.
"""

import random

import pytest

from repro.analysis import ascii_gantt, schedule, schedule_from_result
from repro.circuits import bits_from_int
from repro.circuits.arith import multiply_accumulate
from repro.circuits.sequential import SequentialBuilder
from repro.gc import SequentialSession
from repro.gc.ot import TEST_GROUP_512

from _bench_util import write_report


def folded_mac(width=8, acc_width=20):
    """The paper's Sec. 3.5 example: one MULT+ADD folded with registers."""
    bld = SequentialBuilder("folded_mac")
    x = bld.add_alice_inputs(width)
    w = bld.add_bob_inputs(width)
    acc = bld.add_registers(acc_width)
    total = multiply_accumulate(bld, acc, x, w, frac_bits=4)
    bld.bind_registers(acc, total)
    bld.mark_output_bus(total)
    return bld.build_sequential()


def test_fig5_measured_pipeline(benchmark, results_dir):
    seq = folded_mac()
    rng = random.Random(1)
    cycles = 6
    xs = [bits_from_int(rng.randrange(100), 8) for _ in range(cycles)]
    ws = [bits_from_int(rng.randrange(100), 8) for _ in range(cycles)]

    def run():
        session = SequentialSession(seq, ot_group=TEST_GROUP_512,
                                    rng=random.Random(2))
        return session.run(xs, ws, cycles=cycles)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    sched = schedule_from_result(result, bandwidth_bytes_per_s=50e6)
    text = (
        ascii_gantt(sched)
        + f"\nper-cycle non-XOR: {result.n_non_xor_per_cycle}"
        + f"\ncomm: {result.comm}"
    )
    write_report(results_dir, "fig5_pipeline", text)
    # Fig. 5 claims: overlap means makespan < serial sum
    assert sched.makespan < sched.serial_time
    # and the bottleneck actor lower-bounds the makespan
    assert sched.makespan >= sum(result.garble_times)


def test_fig5_transfer_dominated_regime(benchmark, results_dir):
    """At the paper's bandwidth the wire is the bottleneck; the schedule
    should show back-to-back transfers with both CPUs idling."""
    sched = benchmark(
        lambda: schedule(
            garble_times=[0.01] * 5,
            transfer_times=[0.05] * 5,
            evaluate_times=[0.01] * 5,
            ot_time=0.01,
        )
    )
    write_report(results_dir, "fig5_transfer_bound", ascii_gantt(sched))
    # makespan = first garble + 5 back-to-back transfers + final evaluate
    # (the OT overlaps the first transfer, so it is off the critical path)
    assert sched.makespan == pytest.approx(0.01 + 5 * 0.05 + 0.01, abs=1e-9)


def test_fig5_pipeline_speedup_scales_with_cycles(benchmark):
    """More cycles amortize the pipeline fill: speedup approaches the
    three-stage bound."""
    short = schedule([0.1] * 2, [0.1] * 2, [0.1] * 2)
    long = benchmark(lambda: schedule([0.1] * 40, [0.1] * 40, [0.1] * 40))
    assert long.speedup > short.speedup
    assert long.speedup > 2.5
