"""Benchmark-suite fixtures."""

import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent))

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    """Directory where benchmark harnesses write their report tables."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
