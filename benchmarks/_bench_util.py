"""Shared helpers for the benchmark harness.

Also a tiny CLI: ``python benchmarks/_bench_util.py check BASELINE.json``
compares a freshly written ``BENCH_engine.json`` against a baseline
snapshot and exits non-zero when any shared benchmark id regressed its
speedup-style metrics beyond the tolerance — the CI ``bench`` job runs
this against the committed trajectory so perf regressions fail the
build instead of silently rewriting the numbers.
"""

import argparse
import json
import math
import os
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Repo-root perf trajectory: every engine benchmark run appends or
#: refreshes its entry here, so speed regressions are visible across
#: PRs (CI uploads the file as an artifact).
TRAJECTORY_PATH = pathlib.Path(__file__).parent.parent / "BENCH_engine.json"


def quick_mode() -> bool:
    """True when the benchmarks should run their fast CI configuration."""
    return bool(os.environ.get("REPRO_BENCH_QUICK"))


def write_report(results_dir, name: str, text: str) -> None:
    """Persist one reproduction table (also echoed for -s runs)."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}]\n{text}")


def _is_ratio(value) -> bool:
    """True for a real, finite, non-bool number (a usable speedup)."""
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
    )


def _speedup_problems(entry: dict) -> list:
    """Why this entry cannot anchor the regression gate (empty = fine).

    Every trajectory entry must carry at least one *numeric* speedup
    metric: a ``None``/NaN value never compares against a baseline, so
    a regression in that benchmark would silently escape the CI gate.
    """
    entry_id = entry.get("id", "<missing id>")
    keys = [k for k in entry if "speedup" in k]
    problems = []
    if not keys:
        problems.append(
            f"{entry_id}: no speedup metric (key containing 'speedup') — "
            "the CI regression gate would never compare this entry"
        )
    for key in keys:
        if not _is_ratio(entry[key]):
            problems.append(
                f"{entry_id}.{key} = {entry[key]!r} is not a finite "
                "number — it silently escapes the regression gate"
            )
    return problems


def record_trajectory(entry_id: str, payload: dict) -> None:
    """Upsert one entry of the perf trajectory (keyed by ``entry_id``).

    The file keeps one entry per benchmark id so re-runs refresh their
    numbers in place while entries from other benchmarks/PRs persist.

    Raises:
        ValueError: the entry carries no numeric speedup metric (every
            entry must be comparable by the CI regression gate — a
            ``None`` speedup would silently escape it).
    """
    problems = _speedup_problems({"id": entry_id, **payload})
    if problems:
        raise ValueError(
            "refusing to record an ungateable trajectory entry:\n  "
            + "\n  ".join(problems)
        )
    data = {"entries": []}
    if TRAJECTORY_PATH.exists():
        try:
            data = json.loads(TRAJECTORY_PATH.read_text())
        except (ValueError, OSError):
            data = {"entries": []}
    entries = [e for e in data.get("entries", []) if e.get("id") != entry_id]
    entries.append({"id": entry_id, **payload})
    data["entries"] = entries
    TRAJECTORY_PATH.write_text(json.dumps(data, indent=2, sort_keys=True)
                               + "\n")
    print(f"\n[trajectory:{entry_id}] -> {TRAJECTORY_PATH}")


def compare_trajectory(baseline: dict, current: dict,
                       tolerance: float = 0.25) -> list:
    """Find speedup regressions between two trajectory files.

    Compares every benchmark id present in *both* files (ids only in one
    are skipped — a bench that did not re-run has nothing to report).
    Only ratio metrics (``speedup`` / ``*_speedup`` / ``speedup_*``
    keys) are compared: they are the machine-portable part of an entry,
    unlike absolute seconds, which differ between the committing host
    and CI runners.  A regression is a current ratio more than
    ``tolerance`` below the baseline.

    Returns:
        Human-readable problem strings (empty = no regressions).
    """
    base_entries = {e.get("id"): e for e in baseline.get("entries", [])}
    cur_entries = {e.get("id"): e for e in current.get("entries", [])}
    problems = []
    # a malformed *current* entry must fail the gate, not slip past it:
    # a None speedup compares against nothing, so without this check a
    # benchmark could regress arbitrarily and still go green
    for entry in current.get("entries", []):
        problems.extend(_speedup_problems(entry))
    for entry_id, base in base_entries.items():
        cur = cur_entries.get(entry_id)
        if cur is None:
            continue
        for key, base_val in sorted(base.items()):
            if "speedup" not in key:
                continue
            if not _is_ratio(base_val):
                continue
            cur_val = cur.get(key)
            if base_val <= 0:
                continue
            if not _is_ratio(cur_val):
                problems.append(
                    f"{entry_id}.{key}: baseline {base_val:.3f} but current "
                    f"value {cur_val!r} is not comparable"
                )
                continue
            if cur_val < base_val * (1.0 - tolerance):
                drop = (1.0 - cur_val / base_val) * 100.0
                problems.append(
                    f"{entry_id}.{key}: {cur_val:.3f} vs baseline "
                    f"{base_val:.3f} (-{drop:.0f}%, tolerance "
                    f"{tolerance * 100:.0f}%)"
                )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark trajectory utilities"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    check = sub.add_parser(
        "check", help="fail when the current trajectory regressed"
    )
    check.add_argument("baseline", type=pathlib.Path,
                       help="baseline BENCH_engine.json snapshot")
    check.add_argument("--current", type=pathlib.Path,
                       default=TRAJECTORY_PATH,
                       help="trajectory to check (default: repo root)")
    check.add_argument("--tolerance", type=float,
                       default=float(os.environ.get(
                           "REPRO_BENCH_TOLERANCE", "0.25")),
                       help="allowed fractional speedup drop "
                            "(default 0.25)")
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text())
    problems = compare_trajectory(baseline, current, args.tolerance)
    compared = sorted(
        set(e.get("id") for e in baseline.get("entries", []))
        & set(e.get("id") for e in current.get("entries", []))
    )
    print(f"compared {len(compared)} benchmark ids: {', '.join(compared)}")
    if problems:
        print("PERF REGRESSIONS:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print("no speedup regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
