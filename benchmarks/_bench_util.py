"""Shared helpers for the benchmark harness."""

import json
import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Repo-root perf trajectory: every engine benchmark run appends or
#: refreshes its entry here, so speed regressions are visible across
#: PRs (CI uploads the file as an artifact).
TRAJECTORY_PATH = pathlib.Path(__file__).parent.parent / "BENCH_engine.json"


def quick_mode() -> bool:
    """True when the benchmarks should run their fast CI configuration."""
    return bool(os.environ.get("REPRO_BENCH_QUICK"))


def write_report(results_dir, name: str, text: str) -> None:
    """Persist one reproduction table (also echoed for -s runs)."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}]\n{text}")


def record_trajectory(entry_id: str, payload: dict) -> None:
    """Upsert one entry of the perf trajectory (keyed by ``entry_id``).

    The file keeps one entry per benchmark id so re-runs refresh their
    numbers in place while entries from other benchmarks/PRs persist.
    """
    data = {"entries": []}
    if TRAJECTORY_PATH.exists():
        try:
            data = json.loads(TRAJECTORY_PATH.read_text())
        except (ValueError, OSError):
            data = {"entries": []}
    entries = [e for e in data.get("entries", []) if e.get("id") != entry_id]
    entries.append({"id": entry_id, **payload})
    data["entries"] = entries
    TRAJECTORY_PATH.write_text(json.dumps(data, indent=2, sort_keys=True)
                               + "\n")
    print(f"\n[trajectory:{entry_id}] -> {TRAJECTORY_PATH}")
