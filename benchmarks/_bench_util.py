"""Shared helpers for the benchmark harness."""

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_report(results_dir, name: str, text: str) -> None:
    """Persist one reproduction table (also echoed for -s runs)."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}]\n{text}")
